#include "profiler/profiler.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace mipp {

namespace {

/** Linear branch entropy of a taken-probability (thesis Eq 3.14). */
double
linearEntropy(double p)
{
    return 2.0 * std::min(p, 1.0 - p);
}

/** Taken/not-taken counts for one (branch, history) pair. */
struct TakenCounts {
    uint32_t taken = 0;
    uint32_t total = 0;
};

/** Average linear entropy over a (pc, history) count map (Eq 3.15). */
double
entropyOf(const std::unordered_map<uint64_t, TakenCounts> &stats,
          uint64_t &branchesOut)
{
    double sum = 0;
    uint64_t branches = 0;
    for (const auto &[key, c] : stats) {
        double p = static_cast<double>(c.taken) / c.total;
        sum += c.total * linearEntropy(p);
        branches += c.total;
    }
    branchesOut = branches;
    return branches ? sum / branches : 0.0;
}

/**
 * Dependence-depth walk over one window of uops (thesis Alg 3.1).
 *
 * depth[j]     = producing-chain length ending at uop j (>= 1)
 * loadDepth[j] = loads on the longest load-dependence path reaching j
 */
struct WindowChainStats {
    double ap = 0;
    double abp = 0;
    bool hasBranch = false;
    double cp = 0;
    /** Load-depth histogram (1-based, capped). */
    std::array<uint32_t, LoadDepProfile::kMaxDepth> loadHisto{};
    uint32_t loads = 0;
    uint32_t independentLoads = 0;
};

WindowChainStats
walkWindow(const MicroOp *ops, size_t n,
           std::vector<std::pair<uint32_t, uint32_t>> *loadDepthPerOp)
{
    WindowChainStats out;
    // Producer position per register within the window; -1 = outside.
    int prod[kNumRegs];
    std::fill(std::begin(prod), std::end(prod), -1);

    std::vector<uint16_t> depth(n), loadDepth(n);
    double depthSum = 0, branchDepthSum = 0;
    uint32_t branches = 0;
    uint16_t maxDepth = 0;

    for (size_t j = 0; j < n; ++j) {
        const MicroOp &op = ops[j];
        uint16_t d = 0, ld = 0;
        auto consider = [&](int8_t reg) {
            if (reg == kNoReg)
                return;
            int p = prod[reg];
            if (p >= 0) {
                d = std::max(d, depth[p]);
                ld = std::max(ld, loadDepth[p]);
            }
        };
        consider(op.src1);
        consider(op.src2);
        depth[j] = d + 1;
        bool is_load = op.type == UopType::Load;
        loadDepth[j] = ld + (is_load ? 1 : 0);
        if (op.dst != kNoReg)
            prod[op.dst] = static_cast<int>(j);

        depthSum += depth[j];
        maxDepth = std::max(maxDepth, depth[j]);
        if (op.type == UopType::Branch) {
            branchDepthSum += depth[j];
            branches++;
        }
        if (is_load) {
            out.loads++;
            int bin = std::min<int>(loadDepth[j],
                                    LoadDepProfile::kMaxDepth);
            out.loadHisto[bin - 1]++;
            if (loadDepth[j] == 1)
                out.independentLoads++;
            if (loadDepthPerOp)
                loadDepthPerOp->emplace_back(static_cast<uint32_t>(j),
                                             loadDepth[j]);
        }
    }
    out.ap = n ? depthSum / n : 0;
    out.cp = maxDepth;
    out.hasBranch = branches > 0;
    out.abp = branches ? branchDepthSum / branches : 0;
    return out;
}

/** Whole-trace profiling state. */
class Profiler
{
  public:
    Profiler(const ProfilerConfig &cfg) : cfg_(cfg)
    {
        profile_.name = cfg.name;
        profile_.sampling = cfg.sampling;
        profile_.robSizes = cfg.robSizes;
        profile_.chains = DependenceChains(cfg.robSizes);
        profile_.loadDeps.resize(cfg.robSizes.size());
        profile_.cold.resize(cfg.robSizes.size());
        profile_.branch.historyBits = cfg.historyBits;
    }

    Profile run(const Trace &trace);

  private:
    void observeMemory(const MicroOp &op, size_t uopIndex, bool inMt);
    void observeBranch(const MicroOp &op, bool inMt);
    void observeIfetch(const MicroOp &op);
    void finishMicroTrace();
    uint32_t memOpIndex(uint64_t pc, bool isStore);

    const ProfilerConfig &cfg_;
    Profile profile_;

    // --- continuous (whole-trace) state ----------------------------------
    std::unordered_map<uint64_t, uint64_t> lastAccess_; // line -> mem idx
    uint64_t memIndex_ = 0;
    std::unordered_map<uint64_t, uint64_t> lastILine_;  // iline -> idx
    uint64_t iLineIndex_ = 0;
    uint64_t prevILine_ = ~0ULL;
    std::unordered_map<uint64_t, TakenCounts> branchStats_;
    uint64_t ghist_ = 0;
    std::unordered_map<uint64_t, uint32_t> memOpIndex_; // pc -> memOps idx
    struct OpRunning {
        uint64_t lastAddr = 0;
        uint64_t lastUopIdx = 0;
        bool seen = false;
    };
    std::vector<OpRunning> opRunning_;
    std::vector<uint64_t> coldLoadUopIdx_;

    // --- per-micro-trace state --------------------------------------------
    std::vector<MicroOp> mtBuf_;
    std::vector<size_t> mtUopIdx_;
    std::unordered_map<uint64_t, TakenCounts> mtBranchStats_;
    std::unordered_map<uint32_t, uint32_t> mtMemCounts_;
    std::unordered_map<uint32_t, uint32_t> mtFirstPos_;
    uint32_t mtColdMisses_ = 0;
};

uint32_t
Profiler::memOpIndex(uint64_t pc, bool isStore)
{
    auto it = memOpIndex_.find(pc);
    if (it != memOpIndex_.end())
        return it->second;
    uint32_t idx = static_cast<uint32_t>(profile_.memOps.size());
    memOpIndex_[pc] = idx;
    StaticMemProfile p;
    p.pc = pc;
    p.isStore = isStore;
    profile_.memOps.push_back(std::move(p));
    opRunning_.emplace_back();
    return idx;
}

void
Profiler::observeMemory(const MicroOp &op, size_t uopIndex, bool inMt)
{
    uint64_t line = op.lineAddr();
    bool is_store = op.type == UopType::Store;

    // Combined-stream reuse distance (thesis Fig 4.1).
    auto [it, cold] = lastAccess_.try_emplace(line, memIndex_);
    uint64_t rd = 0;
    if (!cold) {
        rd = memIndex_ - it->second - 1;
        it->second = memIndex_;
    }
    memIndex_++;

    auto addReuse = [&](LogHistogram &h) {
        if (cold)
            h.addInfinite();
        else
            h.add(rd);
    };
    addReuse(profile_.reuseAll);
    addReuse(is_store ? profile_.reuseStores : profile_.reuseLoads);

    if (cold && !is_store) {
        profile_.cold.coldLoadMisses++;
        coldLoadUopIdx_.push_back(uopIndex);
        if (inMt)
            mtColdMisses_++;
    }

    // Per-static-op statistics (strides tracked continuously; spacing
    // within micro-traces).
    uint32_t idx = memOpIndex(op.pc, is_store);
    StaticMemProfile &sp = profile_.memOps[idx];
    OpRunning &run = opRunning_[idx];
    sp.count++;
    addReuse(sp.reuse);
    if (run.seen) {
        int64_t stride = static_cast<int64_t>(op.addr) -
                         static_cast<int64_t>(run.lastAddr);
        // Bound the stride map; rare strides beyond the cap fold into the
        // closest existing entry-free behaviour (counted as distinct-ish).
        if (sp.strides.size() < 64 || sp.strides.count(stride))
            sp.strides[stride]++;
        sp.gapSum += uopIndex - run.lastUopIdx;
        sp.gapCount++;
        if (!is_store && op.src1 == op.dst && op.dst != kNoReg)
            sp.selfDependent++;
    }
    run.lastAddr = op.addr;
    run.lastUopIdx = uopIndex;
    run.seen = true;

    if (inMt) {
        mtMemCounts_[idx]++;
        size_t pos = mtBuf_.size(); // position within the micro-trace
        mtFirstPos_.try_emplace(idx, static_cast<uint32_t>(pos));
    }
}

void
Profiler::observeBranch(const MicroOp &op, bool inMt)
{
    uint64_t mask = (1ULL << cfg_.historyBits) - 1;
    uint64_t key = (op.pc << cfg_.historyBits) | (ghist_ & mask);
    auto &c = branchStats_[key];
    c.taken += op.taken ? 1 : 0;
    c.total++;

    if (inMt) {
        uint64_t wmask = (1ULL << cfg_.windowHistoryBits) - 1;
        uint64_t wkey = (op.pc << cfg_.windowHistoryBits) | (ghist_ & wmask);
        auto &wc = mtBranchStats_[wkey];
        wc.taken += op.taken ? 1 : 0;
        wc.total++;
    }
    ghist_ = (ghist_ << 1) | (op.taken ? 1 : 0);
}

void
Profiler::observeIfetch(const MicroOp &op)
{
    uint64_t iline = op.pc / kLineSize;
    if (iline == prevILine_)
        return;
    prevILine_ = iline;
    auto [it, cold] = lastILine_.try_emplace(iline, iLineIndex_);
    if (cold) {
        profile_.reuseInsts.addInfinite();
    } else {
        profile_.reuseInsts.add(iLineIndex_ - it->second - 1);
        it->second = iLineIndex_;
    }
    iLineIndex_++;
}

void
Profiler::finishMicroTrace()
{
    if (mtBuf_.empty())
        return;

    WindowProfile wp;
    wp.ap.resize(cfg_.robSizes.size());
    wp.abp.resize(cfg_.robSizes.size());
    wp.cp.resize(cfg_.robSizes.size());

    for (const auto &op : mtBuf_) {
        wp.uopCounts[static_cast<int>(op.type)]++;
        wp.insts += op.instBoundary ? 1 : 0;
        if (op.type == UopType::Branch)
            wp.branches++;
        profile_.srcOperands +=
            (op.src1 != kNoReg) + (op.src2 != kNoReg);
        profile_.dstOperands += op.dst != kNoReg;
    }
    profile_.profiledUops += mtBuf_.size();
    profile_.profiledInsts += wp.insts;
    for (int t = 0; t < kNumUopTypes; ++t)
        profile_.uopCounts[t] += wp.uopCounts[t];

    // Dependence chains + load-dependence distributions, one pass of
    // stepping windows per profiled ROB size (thesis Alg 3.1, sampled).
    const size_t median = cfg_.robSizes.size() / 2;
    for (size_t i = 0; i < cfg_.robSizes.size(); ++i) {
        size_t b = cfg_.robSizes[i];
        if (b > mtBuf_.size())
            b = mtBuf_.size();
        size_t nwin = mtBuf_.size() / b;
        double apSum = 0, abpSum = 0, cpSum = 0;
        double abpWindows = 0;
        std::vector<std::pair<uint32_t, uint32_t>> perLoad;
        for (size_t w = 0; w < nwin; ++w) {
            auto stats = walkWindow(
                mtBuf_.data() + w * b, b,
                i == median ? &perLoad : nullptr);
            apSum += stats.ap;
            cpSum += stats.cp;
            if (stats.hasBranch) {
                abpSum += stats.abp;
                abpWindows += 1;
            }
            auto &ld = profile_.loadDeps;
            for (int l = 0; l < LoadDepProfile::kMaxDepth; ++l)
                ld.histo[i][l] += stats.loadHisto[l];
            ld.loads[i] += stats.loads;
            ld.windows[i] += 1;
            ld.independentLoads[i] += stats.independentLoads;

            if (i == median) {
                // Attribute load depths to their static op for the
                // stride-MLP model's dependence imposition.
                for (auto &[posInWin, depthv] : perLoad) {
                    size_t pos = w * b + posInWin;
                    const MicroOp &op = mtBuf_[pos];
                    auto it = memOpIndex_.find(op.pc);
                    if (it != memOpIndex_.end()) {
                        auto &sp = profile_.memOps[it->second];
                        sp.loadDepthSum += depthv;
                        sp.loadDepthCount++;
                    }
                }
                perLoad.clear();
            }
            profile_.chains.addSample(i, stats.ap, stats.abp,
                                      stats.hasBranch, stats.cp);
        }
        if (nwin > 0) {
            wp.ap[i] = static_cast<float>(apSum / nwin);
            wp.cp[i] = static_cast<float>(cpSum / nwin);
            wp.abp[i] = abpWindows ?
                static_cast<float>(abpSum / abpWindows) : 0.0f;
        }
    }

    // Per-window branch entropy.
    uint64_t nb = 0;
    wp.branchEntropy = static_cast<float>(entropyOf(mtBranchStats_, nb));

    // Per-window memory-op occurrence counts + spacing updates.
    wp.memCounts.assign(mtMemCounts_.begin(), mtMemCounts_.end());
    std::sort(wp.memCounts.begin(), wp.memCounts.end());
    for (const auto &[idx, firstPos] : mtFirstPos_) {
        profile_.memOps[idx].firstPosSum += firstPos;
        profile_.memOps[idx].microTraces++;
    }
    wp.coldMisses = mtColdMisses_;

    profile_.windows.push_back(std::move(wp));
    mtBuf_.clear();
    mtUopIdx_.clear();
    mtBranchStats_.clear();
    mtMemCounts_.clear();
    mtFirstPos_.clear();
    mtColdMisses_ = 0;
}

Profile
Profiler::run(const Trace &trace)
{
    profile_.totalUops = trace.size();

    bool prevInMt = false;
    for (size_t i = 0; i < trace.size(); ++i) {
        const MicroOp &op = trace[i];
        bool in_mt = cfg_.sampling.inMicroTrace(i);
        if (prevInMt && !in_mt)
            finishMicroTrace();
        prevInMt = in_mt;

        // Continuously tracked statistics.
        observeIfetch(op);
        if (isMemory(op.type))
            observeMemory(op, i, in_mt);
        if (op.type == UopType::Branch)
            observeBranch(op, in_mt);

        if (in_mt) {
            mtBuf_.push_back(op);
            mtUopIdx_.push_back(i);
        }
    }
    finishMicroTrace();

    // Finalize branch entropy.
    profile_.branch.staticBranches = 0;
    {
        std::unordered_map<uint64_t, bool> seen;
        for (const auto &[key, c] : branchStats_)
            seen[key >> cfg_.historyBits] = true;
        profile_.branch.staticBranches = seen.size();
    }
    uint64_t nb = 0;
    double e = entropyOf(branchStats_, nb);
    profile_.branch.branches = nb;
    profile_.branch.entropySum = e * nb;

    // Cold-miss burstiness per ROB size (thesis §4.4): step ROB-sized
    // windows over the uop stream and count cold loads per window.
    for (size_t i = 0; i < cfg_.robSizes.size(); ++i) {
        uint64_t b = cfg_.robSizes[i];
        uint64_t curWindow = ~0ULL;
        uint64_t inWindow = 0;
        auto &cold = profile_.cold;
        cold.totalWindows[i] = trace.size() / b;
        for (uint64_t idx : coldLoadUopIdx_) {
            uint64_t w = idx / b;
            if (w != curWindow) {
                if (curWindow != ~0ULL) {
                    cold.windowsWithCold[i]++;
                    cold.coldInWindows[i] += inWindow;
                }
                curWindow = w;
                inWindow = 0;
            }
            inWindow++;
        }
        if (curWindow != ~0ULL) {
            cold.windowsWithCold[i]++;
            cold.coldInWindows[i] += inWindow;
        }
    }

    return std::move(profile_);
}

} // namespace

Profile
profileTrace(const Trace &trace, const ProfilerConfig &cfg)
{
    Profiler p(cfg);
    return p.run(trace);
}

} // namespace mipp
