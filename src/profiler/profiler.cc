#include "profiler/profiler.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "obs/trace.hh"
#include "util/flat_map.hh"
#include "util/thread_pool.hh"

namespace mipp {

namespace {

/** Linear branch entropy of a taken-probability (thesis Eq 3.14). */
double
linearEntropy(double p)
{
    return 2.0 * std::min(p, 1.0 - p);
}

/** Taken/not-taken counts for one (branch, history) pair. */
struct TakenCounts {
    uint32_t taken = 0;
    uint32_t total = 0;
};

/**
 * Average linear entropy over a (pc, history) count map (Eq 3.15).
 * Entries are summed in key order so the floating-point result does not
 * depend on hash iteration order.
 */
double
entropyOf(const FlatMap<TakenCounts> &stats, uint64_t &branchesOut)
{
    std::vector<std::pair<uint64_t, TakenCounts>> entries;
    entries.reserve(stats.size());
    stats.forEach([&](uint64_t key, const TakenCounts &c) {
        entries.emplace_back(key, c);
    });
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });

    double sum = 0;
    uint64_t branches = 0;
    for (const auto &[key, c] : entries) {
        double p = static_cast<double>(c.taken) / c.total;
        sum += c.total * linearEntropy(p);
        branches += c.total;
    }
    branchesOut = branches;
    return branches ? sum / branches : 0.0;
}

/**
 * Dependence-depth walk over one window of uops (thesis Alg 3.1).
 *
 * depth[j]     = producing-chain length ending at uop j (>= 1)
 * loadDepth[j] = loads on the longest load-dependence path reaching j
 */
struct WindowChainStats {
    double ap = 0;
    double abp = 0;
    bool hasBranch = false;
    double cp = 0;
    /** Load-depth histogram (1-based, capped). */
    std::array<uint32_t, LoadDepProfile::kMaxDepth> loadHisto{};
    uint32_t loads = 0;
    uint32_t independentLoads = 0;
};

/** Reusable per-walk buffer so stepping windows do not allocate. */
struct WalkScratch {
    /** Packed per-uop state: chain depth in the low 16 bits, load depth
     *  in the high 16 — one load/store instead of two on the walk's
     *  inner dependence lookups. */
    std::vector<uint32_t> packedDepth;

    void resize(size_t n) { packedDepth.resize(n); }
};

WindowChainStats
walkWindow(const MicroOp *ops, size_t n, WalkScratch &scratch,
           std::vector<std::pair<uint32_t, uint32_t>> *loadDepthPerOp)
{
    WindowChainStats out;
    // Producer position per register within the window; -1 = outside.
    int prod[kNumRegs];
    std::fill(std::begin(prod), std::end(prod), -1);

    uint32_t *packed = scratch.packedDepth.data();
    // Integer accumulators (converted once at the end): the sums stay far
    // below 2^53, so the doubles produced are bit-identical to per-step
    // double accumulation.
    uint64_t depthSum = 0, branchDepthSum = 0;
    uint32_t branches = 0;
    uint32_t maxDepth = 0;

    for (size_t j = 0; j < n; ++j) {
        const MicroOp &op = ops[j];
        // Both source depths at once: max over packed halves is the pair
        // of maxes here, because the halves cannot borrow into each other
        // (depths stay far below 2^16 in a <= 2^16-uop window).
        uint32_t dpair = 0;
        auto consider = [&](int8_t reg) {
            if (reg == kNoReg)
                return;
            int p = prod[reg];
            if (p >= 0) {
                uint32_t v = packed[p];
                dpair = std::max(dpair & 0xffffu, v & 0xffffu) |
                        std::max(dpair & 0xffff0000u, v & 0xffff0000u);
            }
        };
        consider(op.src1);
        consider(op.src2);
        bool is_load = op.type == UopType::Load;
        uint32_t d = (dpair & 0xffffu) + 1;
        uint32_t ld = (dpair >> 16) + (is_load ? 1 : 0);
        packed[j] = d | (ld << 16);
        if (op.dst != kNoReg)
            prod[op.dst] = static_cast<int>(j);

        depthSum += d;
        maxDepth = std::max(maxDepth, d);
        if (op.type == UopType::Branch) {
            branchDepthSum += d;
            branches++;
        }
        if (is_load) {
            out.loads++;
            int bin = std::min<int>(static_cast<int>(ld),
                                    LoadDepProfile::kMaxDepth);
            out.loadHisto[bin - 1]++;
            if (ld == 1)
                out.independentLoads++;
            if (loadDepthPerOp)
                loadDepthPerOp->emplace_back(static_cast<uint32_t>(j),
                                             ld);
        }
    }
    out.ap = n ? static_cast<double>(depthSum) / n : 0;
    out.cp = maxDepth;
    out.hasBranch = branches > 0;
    out.abp =
        branches ? static_cast<double>(branchDepthSum) / branches : 0;
    return out;
}

/** Whole-trace profiling state. */
class Profiler
{
  public:
    Profiler(const ProfilerConfig &cfg) : cfg_(cfg)
    {
        profile_.name = cfg.name;
        profile_.sampling = cfg.sampling;
        profile_.robSizes = cfg.robSizes;
        profile_.chains = DependenceChains(cfg.robSizes);
        profile_.loadDeps.resize(cfg.robSizes.size());
        profile_.cold.resize(cfg.robSizes.size());
        profile_.branch.historyBits = cfg.historyBits;
        histMask_ = cfg.historyBits >= 64 ?
            ~0ULL : (1ULL << cfg.historyBits) - 1;
        winHistMask_ = cfg.windowHistoryBits >= 64 ?
            ~0ULL : (1ULL << cfg.windowHistoryBits) - 1;
        // Dense per-pc history tables cost 8 * 2^historyBits bytes per
        // static branch; beyond ~12 bits that scales badly, so long
        // histories keep the sparse hashed-(pc, history) representation.
        denseBranchTables_ = cfg.historyBits <= 12;
    }

    Profile run(const Trace &trace);

  private:
    template <bool InMt>
    void observeRange(const Trace &trace, size_t begin, size_t end);
    void observeMemory(const MicroOp &op, size_t uopIndex, bool inMt);
    void observeBranch(const MicroOp &op, bool inMt);
    uint32_t newBranchTable();
    void finishMicroTrace();
    void walkRobSize(const MicroOp *mt, size_t mtLen, size_t i,
                     size_t median, WindowProfile &wp);
    uint32_t memOpIndex(uint64_t pc, bool isStore);
    bool findMemOp(uint64_t pc, uint32_t &idx) const;
    uint32_t createMemOp(uint64_t pc, bool isStore);

    const ProfilerConfig &cfg_;
    Profile profile_;

    // --- continuous (whole-trace) state ----------------------------------
    FlatMap<uint64_t> lastAccess_; // line -> mem idx
    uint64_t memIndex_ = 0;
    FlatMap<uint64_t> lastILine_;  // iline -> idx
    uint64_t iLineIndex_ = 0;
    uint64_t prevILine_ = ~0ULL;
    /**
     * Global branch statistics as pc -> dense history table: one
     * direct-indexed (or, off-window, hashed) pc lookup plus one
     * direct-indexed store per branch, instead of hashing the whole
     * (pc, history) pair into one large map. Direct slots hold
     * table+1 (0 = empty), same windowing scheme as memOpDirect_.
     */
    std::vector<uint32_t> branchDirect_;
    uint64_t branchPcBase_ = ~0ULL;
    FlatMap<uint32_t> branchPc_; // fallback: pc -> table index
    std::vector<TakenCounts> branchTables_; // tables * (histMask_ + 1)
    uint32_t numBranchTables_ = 0;
    /** Long histories (> 12 bits) skip the dense tables and hash the
     *  whole (pc, history) pair, like the per-micro-trace stats. */
    bool denseBranchTables_ = true;
    FlatMap<TakenCounts> sparseBranchStats_;
    uint64_t ghist_ = 0;
    /** Hoisted (1 << historyBits) - 1 masks for the branch-key hot path. */
    uint64_t histMask_ = 0;
    uint64_t winHistMask_ = 0;
    /**
     * pc -> memOps index. Program counters cluster in a small static
     * code footprint, so a direct-indexed table over a 64 KiB pc window
     * (anchored at the first memory pc seen) resolves essentially every
     * lookup with one load; pcs outside the window fall back to the
     * hash map. Slot value is idx+1 (0 = empty).
     */
    static constexpr size_t kPcWindow = 1u << 16;
    std::vector<uint32_t> memOpDirect_;
    uint64_t memPcBase_ = ~0ULL;
    FlatMap<uint32_t> memOpIndex_; // fallback for out-of-window pcs
    /**
     * Per-static-op running state, kept separate from StaticMemProfile
     * so each memory access touches one compact struct (hot fields in
     * the leading cache line) instead of the profile's large output
     * record. Materialized into profile_.memOps when the run ends.
     */
    struct OpRunning {
        static constexpr size_t kInlineStrides = 4;
        static constexpr size_t kMaxStrides = 64;

        // -- first cache line: touched on every access ------------------
        uint64_t lastAddr = 0;
        uint64_t lastUopIdx = 0;
        uint64_t count = 0;
        uint64_t gapSum = 0;
        uint64_t gapCount = 0;
        uint64_t selfDependent = 0;
        bool seen = false;
        bool isStore = false; // nominal type (first occurrence)
        uint8_t nInline = 0;

        // -- stride counts: inline entries cover the common stride
        //    classes (thesis Fig 4.7: most static loads have <= 4
        //    dominant strides); the flat map takes the overflow up to
        //    the 64-distinct cap.
        std::array<uint64_t, kInlineStrides> strideKey{};
        std::array<uint64_t, kInlineStrides> strideCount{};
        FlatMap<uint64_t> strideOverflow;

        /** Reuse distances of this op's accesses (combined stream). */
        LogHistogram reuse;

        void
        addStride(uint64_t stride)
        {
            for (size_t k = 0; k < nInline; ++k) {
                if (strideKey[k] == stride) {
                    strideCount[k]++;
                    return;
                }
            }
            if (nInline < kInlineStrides) {
                strideKey[nInline] = stride;
                strideCount[nInline] = 1;
                nInline++;
                return;
            }
            if (kInlineStrides + strideOverflow.size() < kMaxStrides) {
                if (strideOverflow.empty())
                    strideOverflow.reserve(kMaxStrides);
                strideOverflow[stride]++;
            } else if (uint64_t *c = strideOverflow.find(stride)) {
                (*c)++;
            }
        }
    };
    std::vector<OpRunning> opRunning_;
    std::vector<uint64_t> coldLoadUopIdx_;
    /** Exact corrections for accesses whose type differs from their
     *  static op's nominal type ([0] loads, [1] stores). */
    struct TypeAdjust {
        LogHistogram add;
        LogHistogram sub;
    };
    std::array<TypeAdjust, 2> typeAdjust_;

    // --- per-micro-trace state --------------------------------------------
    // Micro-traces are contiguous runs of the trace, so instead of copying
    // uops into a buffer we keep a zero-copy [mtStart_, mtStart_ + mtLen_)
    // span into the trace being profiled.
    const Trace *trace_ = nullptr;
    size_t mtStart_ = 0;
    size_t mtLen_ = 0;
    FlatMap<TakenCounts> mtBranchStats_;
    /** Per-micro-trace occurrence counts / first positions, indexed
     *  directly by memOps index (dense small ints — no hashing). The
     *  touched list makes the end-of-micro-trace sweep and reset
     *  proportional to the ops actually seen. */
    std::vector<uint32_t> mtMemCount_;
    std::vector<uint32_t> mtFirstPos_;
    std::vector<uint32_t> mtTouched_;
    uint32_t mtColdMisses_ = 0;
};

uint32_t
Profiler::memOpIndex(uint64_t pc, bool isStore)
{
    if (memPcBase_ == ~0ULL) {
        memPcBase_ = pc & ~(static_cast<uint64_t>(kPcWindow) - 1);
        memOpDirect_.assign(kPcWindow, 0);
    }
    uint64_t off = pc - memPcBase_;
    if (off < kPcWindow) {
        uint32_t slot = memOpDirect_[off];
        if (slot)
            return slot - 1;
        uint32_t idx = createMemOp(pc, isStore);
        memOpDirect_[off] = idx + 1;
        return idx;
    }
    auto [slot, inserted] = memOpIndex_.tryEmplace(pc);
    if (!inserted)
        return slot;
    uint32_t idx = createMemOp(pc, isStore);
    slot = idx;
    return idx;
}

/** memOpIndex without creating. @return whether @p pc has an op. */
bool
Profiler::findMemOp(uint64_t pc, uint32_t &idx) const
{
    if (memPcBase_ != ~0ULL && pc - memPcBase_ < kPcWindow) {
        uint32_t slot = memOpDirect_[pc - memPcBase_];
        if (!slot)
            return false;
        idx = slot - 1;
        return true;
    }
    const uint32_t *v = memOpIndex_.find(pc);
    if (!v)
        return false;
    idx = *v;
    return true;
}

uint32_t
Profiler::createMemOp(uint64_t pc, bool isStore)
{
    uint32_t idx = static_cast<uint32_t>(profile_.memOps.size());
    StaticMemProfile p;
    p.pc = pc;
    p.isStore = isStore;
    profile_.memOps.push_back(std::move(p));
    opRunning_.emplace_back();
    opRunning_.back().isStore = isStore;
    return idx;
}

void
Profiler::observeMemory(const MicroOp &op, size_t uopIndex, bool inMt)
{
    uint64_t line = op.lineAddr();
    bool is_store = op.type == UopType::Store;

    // Combined-stream reuse distance (thesis Fig 4.1).
    auto [last, cold] = lastAccess_.tryEmplace(line, memIndex_);
    uint64_t rd = 0;
    if (!cold) {
        rd = memIndex_ - last - 1;
        last = memIndex_;
    }
    memIndex_++;

    // The same distance lands in three histograms (combined, per-type,
    // per-op). Only the per-op one is touched here: reuseLoads /
    // reuseStores are assembled at the end of the run from the per-op
    // histograms (each static op is load or store), with the rare
    // mixed-type pc corrected exactly via typeAdjust_, and reuseAll is
    // their merge.
    size_t reuseBin = cold ? 0 : LogHistogram::binIndex(rd);

    if (cold && !is_store) {
        profile_.cold.coldLoadMisses++;
        coldLoadUopIdx_.push_back(uopIndex);
        if (inMt)
            mtColdMisses_++;
    }

    // Per-static-op statistics (strides tracked continuously; spacing
    // within micro-traces), accumulated on the compact running struct.
    uint32_t idx = memOpIndex(op.pc, is_store);
    OpRunning &run = opRunning_[idx];
    run.count++;
    if (cold)
        run.reuse.addInfinite();
    else
        run.reuse.addAtBin(reuseBin);
    if (is_store != run.isStore) [[unlikely]] {
        // Access type differs from the op's nominal type: log the exact
        // correction moving this count between the derived per-type
        // histograms (add to the access's type, remove from the op's).
        LogHistogram &add = typeAdjust_[is_store ? 1 : 0].add;
        LogHistogram &sub = typeAdjust_[run.isStore ? 1 : 0].sub;
        if (cold) {
            add.addInfinite();
            sub.addInfinite();
        } else {
            add.addAtBin(reuseBin);
            sub.addAtBin(reuseBin);
        }
    }
    if (run.seen) {
        run.addStride(static_cast<uint64_t>(op.addr - run.lastAddr));
        run.gapSum += uopIndex - run.lastUopIdx;
        run.gapCount++;
        if (!is_store && op.src1 == op.dst && op.dst != kNoReg)
            run.selfDependent++;
    }
    run.lastAddr = op.addr;
    run.lastUopIdx = uopIndex;
    run.seen = true;

    if (inMt) {
        if (idx >= mtMemCount_.size()) {
            mtMemCount_.resize(opRunning_.size(), 0);
            mtFirstPos_.resize(opRunning_.size(), 0);
        }
        if (mtMemCount_[idx]++ == 0) {
            // Position within the micro-trace (the span is contiguous).
            mtFirstPos_[idx] = static_cast<uint32_t>(uopIndex - mtStart_);
            mtTouched_.push_back(idx);
        }
    }
}

uint32_t
Profiler::newBranchTable()
{
    const size_t tableSize = static_cast<size_t>(histMask_) + 1;
    branchTables_.resize(branchTables_.size() + tableSize);
    return numBranchTables_++;
}

void
Profiler::observeBranch(const MicroOp &op, bool inMt)
{
    if (!denseBranchTables_) {
        uint64_t key = (op.pc << cfg_.historyBits) | (ghist_ & histMask_);
        auto &c = sparseBranchStats_[key];
        c.taken += op.taken ? 1 : 0;
        c.total++;
    } else {
        const size_t tableSize = static_cast<size_t>(histMask_) + 1;
        uint32_t table;
        if (branchPcBase_ == ~0ULL) {
            branchPcBase_ =
                op.pc & ~(static_cast<uint64_t>(kPcWindow) - 1);
            branchDirect_.assign(kPcWindow, 0);
        }
        uint64_t off = op.pc - branchPcBase_;
        if (off < kPcWindow) {
            uint32_t slot = branchDirect_[off];
            if (slot) {
                table = slot - 1;
            } else {
                table = newBranchTable();
                branchDirect_[off] = table + 1;
            }
        } else {
            auto [slot, fresh] = branchPc_.tryEmplace(op.pc, 0);
            if (fresh)
                slot = newBranchTable();
            table = slot;
        }
        TakenCounts &c =
            branchTables_[static_cast<size_t>(table) * tableSize +
                          (ghist_ & histMask_)];
        c.taken += op.taken ? 1 : 0;
        c.total++;
    }

    if (inMt) {
        uint64_t wkey =
            (op.pc << cfg_.windowHistoryBits) | (ghist_ & winHistMask_);
        auto &wc = mtBranchStats_[wkey];
        wc.taken += op.taken ? 1 : 0;
        wc.total++;
    }
    ghist_ = (ghist_ << 1) | (op.taken ? 1 : 0);
}

/**
 * Stepping-window chain walk for ROB-size index @p i over the current
 * micro-trace span. Writes only state owned by index i (chains row i,
 * loadDeps row i, wp.*[i]) plus, for the median size only, the per-op
 * load-depth attribution — safe to run concurrently across i.
 */
void
Profiler::walkRobSize(const MicroOp *mt, size_t mtLen, size_t i,
                      size_t median, WindowProfile &wp)
{
    size_t b = cfg_.robSizes[i];
    if (b > mtLen)
        b = mtLen;
    size_t nwin = mtLen / b;
    double apSum = 0, abpSum = 0, cpSum = 0;
    double abpWindows = 0;
    WalkScratch scratch;
    scratch.resize(b);
    std::vector<std::pair<uint32_t, uint32_t>> perLoad;
    for (size_t w = 0; w < nwin; ++w) {
        auto stats = walkWindow(mt + w * b, b, scratch,
                                i == median ? &perLoad : nullptr);
        apSum += stats.ap;
        cpSum += stats.cp;
        if (stats.hasBranch) {
            abpSum += stats.abp;
            abpWindows += 1;
        }
        auto &ld = profile_.loadDeps;
        for (int l = 0; l < LoadDepProfile::kMaxDepth; ++l)
            ld.histo[i][l] += stats.loadHisto[l];
        ld.loads[i] += stats.loads;
        ld.windows[i] += 1;
        ld.independentLoads[i] += stats.independentLoads;

        if (i == median) {
            // Attribute load depths to their static op for the
            // stride-MLP model's dependence imposition.
            for (auto &[posInWin, depthv] : perLoad) {
                size_t pos = w * b + posInWin;
                const MicroOp &op = mt[pos];
                uint32_t sidx = 0;
                if (findMemOp(op.pc, sidx)) {
                    auto &sp = profile_.memOps[sidx];
                    sp.loadDepthSum += depthv;
                    sp.loadDepthCount++;
                }
            }
            perLoad.clear();
        }
        profile_.chains.addSample(i, stats.ap, stats.abp,
                                  stats.hasBranch, stats.cp);
    }
    if (nwin > 0) {
        wp.ap[i] = static_cast<float>(apSum / nwin);
        wp.cp[i] = static_cast<float>(cpSum / nwin);
        wp.abp[i] = abpWindows ?
            static_cast<float>(abpSum / abpWindows) : 0.0f;
    }
}

void
Profiler::finishMicroTrace()
{
    if (mtLen_ == 0)
        return;
    const MicroOp *mt = trace_->data() + mtStart_;
    const size_t mtLen = mtLen_;

    WindowProfile wp;
    wp.ap.resize(cfg_.robSizes.size());
    wp.abp.resize(cfg_.robSizes.size());
    wp.cp.resize(cfg_.robSizes.size());

    for (size_t k = 0; k < mtLen; ++k) {
        const MicroOp &op = mt[k];
        wp.uopCounts[static_cast<int>(op.type)]++;
        wp.insts += op.instBoundary ? 1 : 0;
        if (op.type == UopType::Branch)
            wp.branches++;
        profile_.srcOperands +=
            (op.src1 != kNoReg) + (op.src2 != kNoReg);
        profile_.dstOperands += op.dst != kNoReg;
    }
    profile_.profiledUops += mtLen;
    profile_.profiledInsts += wp.insts;
    for (int t = 0; t < kNumUopTypes; ++t)
        profile_.uopCounts[t] += wp.uopCounts[t];

    // Dependence chains + load-dependence distributions, one pass of
    // stepping windows per profiled ROB size (thesis Alg 3.1, sampled).
    // The per-size walks are independent; fan them out when the span is
    // big enough to amortize the dispatch.
    const size_t nSizes = cfg_.robSizes.size();
    const size_t median = nSizes / 2;
    ThreadPool &pool = ThreadPool::shared();
    if (cfg_.parallelWindows && pool.concurrency() > 1 &&
        mtLen * nSizes >= (1u << 14)) {
        pool.parallelFor(nSizes, 1, [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i)
                walkRobSize(mt, mtLen, i, median, wp);
        });
    } else {
        for (size_t i = 0; i < nSizes; ++i)
            walkRobSize(mt, mtLen, i, median, wp);
    }

    // Per-window branch entropy.
    uint64_t nb = 0;
    wp.branchEntropy = static_cast<float>(entropyOf(mtBranchStats_, nb));

    // Per-window memory-op occurrence counts + spacing updates.
    wp.memCounts.reserve(mtTouched_.size());
    for (uint32_t idx : mtTouched_) {
        wp.memCounts.emplace_back(idx, mtMemCount_[idx]);
        profile_.memOps[idx].firstPosSum += mtFirstPos_[idx];
        profile_.memOps[idx].microTraces++;
        mtMemCount_[idx] = 0;
    }
    std::sort(wp.memCounts.begin(), wp.memCounts.end());
    mtTouched_.clear();
    wp.coldMisses = mtColdMisses_;

    profile_.windows.push_back(std::move(wp));
    mtLen_ = 0;
    mtBranchStats_.clear();
    mtColdMisses_ = 0;
}

template <bool InMt>
void
Profiler::observeRange(const Trace &trace, size_t begin, size_t end)
{
    const size_t n = trace.size();
    // The line-reuse probe is the loop's dominant memory stall; its slot
    // for a memory access 64 uops ahead is prefetched here, far enough
    // out to cover the round-trip.
    constexpr size_t kLookahead = 64;
    // I-line locality state lives in a register across the loop instead
    // of a member load/store per uop.
    uint64_t prevILine = prevILine_;
    for (size_t i = begin; i < end; ++i) {
        const MicroOp &op = trace[i];
        if (i + kLookahead < n) {
            const MicroOp &ahead = trace[i + kLookahead];
            if (isMemory(ahead.type))
                lastAccess_.prefetch(ahead.lineAddr());
        }
        // Instruction-stream reuse (observeIfetch, inlined on the iline
        // transition only).
        uint64_t iline = op.pc / kLineSize;
        if (iline != prevILine) {
            prevILine = iline;
            auto [last, cold] = lastILine_.tryEmplace(iline, iLineIndex_);
            if (cold) {
                profile_.reuseInsts.addInfinite();
            } else {
                profile_.reuseInsts.add(iLineIndex_ - last - 1);
                last = iLineIndex_;
            }
            iLineIndex_++;
        }
        if (isMemory(op.type))
            observeMemory(op, i, InMt);
        if (op.type == UopType::Branch)
            observeBranch(op, InMt);
    }
    prevILine_ = prevILine;
}

Profile
Profiler::run(const Trace &trace)
{
    profile_.totalUops = trace.size();
    trace_ = &trace;

    // Pre-size the hot maps so the innermost loop does not stall on
    // rehashes (the line-reuse map moves its whole payload on growth).
    lastAccess_.reserve(std::min<size_t>(trace.size() / 8 + 64, 1u << 22));
    lastILine_.reserve(1024);
    branchTables_.reserve(64 * (static_cast<size_t>(histMask_) + 1));
    // The per-micro-trace map keeps its capacity across clear(); size it
    // once instead of growing through rehashes on the first micro-trace.
    mtBranchStats_.reserve(512);

    // Walk whole in-/out-of-micro-trace segments instead of testing
    // inMicroTrace(i) per uop: the sampling flag becomes a compile-time
    // constant inside observeRange, so the 95 % fast-forward path
    // carries no micro-trace bookkeeping at all.
    const size_t winSize = std::max<size_t>(1, cfg_.sampling.windowSize);
    const size_t mtSize = cfg_.sampling.microTraceSize;
    const size_t n = trace.size();
    if (mtSize >= winSize) {
        // No sampling: the whole trace is one micro-trace.
        mtStart_ = 0;
        observeRange<true>(trace, 0, n);
        mtLen_ = n;
        finishMicroTrace();
    } else {
        for (size_t winStart = 0; winStart < n; winStart += winSize) {
            size_t mtEnd = std::min(winStart + mtSize, n);
            mtStart_ = winStart;
            observeRange<true>(trace, winStart, mtEnd);
            mtLen_ = mtEnd - winStart;
            finishMicroTrace();
            observeRange<false>(trace, mtEnd,
                                std::min(winStart + winSize, n));
        }
    }

    // Finalize branch entropy, iterating in (pc, history) order so the
    // floating-point sum is identical to a sorted-key reference.
    if (denseBranchTables_) {
        std::vector<std::pair<uint64_t, uint32_t>> pcs;
        pcs.reserve(numBranchTables_);
        if (branchPcBase_ != ~0ULL)
            for (size_t off = 0; off < kPcWindow; ++off)
                if (uint32_t slot = branchDirect_[off])
                    pcs.emplace_back(branchPcBase_ + off, slot - 1);
        branchPc_.forEach([&](uint64_t pc, const uint32_t &table) {
            pcs.emplace_back(pc, table);
        });
        std::sort(pcs.begin(), pcs.end());
        const size_t tableSize = static_cast<size_t>(histMask_) + 1;
        double sum = 0;
        uint64_t branches = 0;
        for (const auto &[pc, table] : pcs) {
            const TakenCounts *tc =
                branchTables_.data() + static_cast<size_t>(table) * tableSize;
            for (size_t h = 0; h < tableSize; ++h) {
                const TakenCounts &c = tc[h];
                if (!c.total)
                    continue;
                double p = static_cast<double>(c.taken) / c.total;
                sum += c.total * linearEntropy(p);
                branches += c.total;
            }
        }
        profile_.branch.staticBranches = pcs.size();
        profile_.branch.branches = branches;
        profile_.branch.entropySum = sum;
    } else {
        uint64_t nb = 0;
        double e = entropyOf(sparseBranchStats_, nb);
        profile_.branch.branches = nb;
        profile_.branch.entropySum = e * nb;
        std::vector<uint64_t> pcs;
        pcs.reserve(sparseBranchStats_.size());
        sparseBranchStats_.forEach([&](uint64_t key, const TakenCounts &) {
            pcs.push_back(key >> cfg_.historyBits);
        });
        std::sort(pcs.begin(), pcs.end());
        profile_.branch.staticBranches = static_cast<uint64_t>(
            std::unique(pcs.begin(), pcs.end()) - pcs.begin());
    }

    // Materialize the per-op running state into the profile's output
    // records (sorted stride maps are the serialized representation),
    // assembling the per-type reuse distributions along the way.
    for (size_t idx = 0; idx < opRunning_.size(); ++idx) {
        OpRunning &run = opRunning_[idx];
        StaticMemProfile &sp = profile_.memOps[idx];
        sp.count = run.count;
        sp.gapSum = run.gapSum;
        sp.gapCount = run.gapCount;
        sp.selfDependent = run.selfDependent;
        sp.reuse = std::move(run.reuse);
        (sp.isStore ? profile_.reuseStores : profile_.reuseLoads)
            .merge(sp.reuse);
        sp.strides.reserve(run.nInline + run.strideOverflow.size());
        for (size_t k = 0; k < run.nInline; ++k)
            sp.strides.emplace_back(
                static_cast<int64_t>(run.strideKey[k]),
                run.strideCount[k]);
        run.strideOverflow.forEach(
            [&](uint64_t stride, const uint64_t &count) {
                sp.strides.emplace_back(static_cast<int64_t>(stride),
                                        count);
            });
        std::sort(sp.strides.begin(), sp.strides.end());
    }

    // Apply the mixed-type corrections, then derive the combined
    // distribution (every access is exactly one of load/store).
    profile_.reuseLoads.merge(typeAdjust_[0].add);
    profile_.reuseLoads.subtract(typeAdjust_[0].sub);
    profile_.reuseStores.merge(typeAdjust_[1].add);
    profile_.reuseStores.subtract(typeAdjust_[1].sub);
    profile_.reuseAll.merge(profile_.reuseLoads);
    profile_.reuseAll.merge(profile_.reuseStores);

    // Cold-miss burstiness per ROB size (thesis §4.4): step ROB-sized
    // windows over the uop stream and count cold loads per window.
    for (size_t i = 0; i < cfg_.robSizes.size(); ++i) {
        uint64_t b = cfg_.robSizes[i];
        uint64_t curWindow = ~0ULL;
        uint64_t inWindow = 0;
        auto &cold = profile_.cold;
        cold.totalWindows[i] = trace.size() / b;
        for (uint64_t idx : coldLoadUopIdx_) {
            uint64_t w = idx / b;
            if (w != curWindow) {
                if (curWindow != ~0ULL) {
                    cold.windowsWithCold[i]++;
                    cold.coldInWindows[i] += inWindow;
                }
                curWindow = w;
                inWindow = 0;
            }
            inWindow++;
        }
        if (curWindow != ~0ULL) {
            cold.windowsWithCold[i]++;
            cold.coldInWindows[i] += inWindow;
        }
    }

    return std::move(profile_);
}

} // namespace

Profile
profileTrace(const Trace &trace, const ProfilerConfig &cfg)
{
    MIPP_SPAN("profiler.pass");
    Profiler p(cfg);
    return p.run(trace);
}

std::vector<Profile>
profileTraces(const std::vector<Trace> &traces,
              const std::vector<ProfilerConfig> &cfgs)
{
    if (!cfgs.empty() && cfgs.size() != 1 && cfgs.size() != traces.size())
        throw std::invalid_argument(
            "profileTraces: cfgs must hold 0, 1, or one config per trace");
    static const ProfilerConfig kDefault{};
    std::vector<Profile> out(traces.size());
    ThreadPool::shared().parallelFor(
        traces.size(), 1, [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
                const ProfilerConfig &cfg =
                    cfgs.empty() ? kDefault
                                 : (cfgs.size() == 1 ? cfgs[0]
                                                     : cfgs.at(i));
                MIPP_SPAN("profiler.pass");
                Profiler p(cfg);
                out[i] = p.run(traces[i]);
            }
        });
    return out;
}

} // namespace mipp
