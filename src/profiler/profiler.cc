#include "profiler/profiler.hh"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "obs/trace.hh"
#include "profiler/segment_profiler.hh"
#include "trace/trace_source.hh"
#include "util/thread_pool.hh"

namespace mipp {

namespace {

/** Requested (or derived) segment span, rounded up to whole windows. */
size_t
segmentSpan(uint64_t totalHint, unsigned threads, size_t winSize,
            size_t requested)
{
    uint64_t span;
    if (requested) {
        span = requested;
    } else if (totalHint != TraceSource::kUnknownSize) {
        span = (totalHint + threads - 1) / threads;
    } else {
        // Unknown stream length: big enough to amortize per-segment
        // boundary resolution, small enough to keep the copy pipeline's
        // footprint modest (threads * span uops in flight).
        span = 64 * static_cast<uint64_t>(winSize);
    }
    span = (span + winSize - 1) / winSize * winSize;
    return static_cast<size_t>(std::max<uint64_t>(span, winSize));
}

unsigned
effectiveThreads(unsigned requested)
{
    return requested ? requested : ThreadPool::shared().concurrency();
}

} // namespace

Profile
profileTrace(const Trace &trace, const ProfilerConfig &cfg)
{
    MIPP_SPAN("profiler.pass");
    SegmentProfiler head(cfg);
    head.feed(trace.data(), trace.size());
    return std::move(head).finalize();
}

Profile
profileTraceParallel(const Trace &trace, const ProfilerConfig &cfg,
                     const ParallelProfileOptions &opts)
{
    const size_t winSize = std::max<size_t>(1, cfg.sampling.windowSize);
    const unsigned threads = effectiveThreads(opts.threads);
    // Unsampled profiling forms one whole-stream micro-trace — nothing
    // to segment; tiny traces are not worth the dispatch.
    if (!cfg.sampling.sampled() || threads <= 1)
        return profileTrace(trace, cfg);
    const size_t span =
        segmentSpan(trace.size(), threads, winSize, opts.segmentUops);
    const size_t nSegs = (trace.size() + span - 1) / span;
    if (nSegs <= 1)
        return profileTrace(trace, cfg);

    MIPP_SPAN("profiler.pass");
    // Every segment profiles in Carry role against unknown prefix state;
    // an empty Head then resolves each segment's boundary records in
    // stream order. The head path never profiles a uop itself, so the
    // result is identical for any window-aligned segmentation — the
    // parity tests pin this against profileTrace bit-for-bit.
    std::vector<std::unique_ptr<SegmentProfiler>> segs(nSegs);
    parallelForShared(nSegs, threads, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
            uint64_t base = static_cast<uint64_t>(i) * span;
            auto seg = std::make_unique<SegmentProfiler>(
                cfg, SegmentProfiler::Role::Carry, base);
            seg->feed(trace.data() + base,
                      std::min<size_t>(span, trace.size() - base));
            seg->seal();
            segs[i] = std::move(seg);
        }
    });
    SegmentProfiler head(cfg);
    for (auto &seg : segs)
        head.absorb(std::move(*seg));
    return std::move(head).finalize();
}

Profile
profileSource(TraceSource &source, const ProfilerConfig &cfg)
{
    MIPP_SPAN("profiler.pass");
    const size_t winSize = std::max<size_t>(1, cfg.sampling.windowSize);
    SegmentProfiler head(cfg);
    if (!cfg.sampling.sampled()) {
        // The whole stream is one micro-trace whose span must be
        // contiguous: accumulate it, then feed once.
        std::vector<MicroOp> all;
        uint64_t hint = source.sizeHint();
        if (hint != TraceSource::kUnknownSize)
            all.reserve(hint);
        for (;;) {
            TraceSegment seg = source.next(winSize);
            if (seg.empty())
                break;
            all.insert(all.end(), seg.data, seg.data + seg.size);
        }
        head.feed(all.data(), all.size());
        return std::move(head).finalize();
    }
    // Streaming: O(chunk) resident uops regardless of stream length.
    // 16 windows per chunk keeps feed() overhead negligible next to the
    // per-uop profiling work.
    const size_t chunk = 16 * winSize;
    for (;;) {
        TraceSegment seg = source.next(chunk);
        if (seg.empty())
            break;
        head.feed(seg.data, seg.size);
    }
    return std::move(head).finalize();
}

Profile
profileSourceParallel(TraceSource &source, const ProfilerConfig &cfg,
                      const ParallelProfileOptions &opts)
{
    const unsigned threads = effectiveThreads(opts.threads);
    if (!cfg.sampling.sampled() || threads <= 1)
        return profileSource(source, cfg);
    const size_t winSize = std::max<size_t>(1, cfg.sampling.windowSize);
    const size_t span =
        segmentSpan(source.sizeHint(), threads, winSize, opts.segmentUops);

    MIPP_SPAN("profiler.pass");
    // Batch pipeline: copy up to `threads` segments out of the source
    // (its spans die on the next next() call), profile the batch in
    // parallel as Carry segments, absorb in stream order, repeat.
    SegmentProfiler head(cfg);
    std::vector<std::vector<MicroOp>> bufs(threads);
    std::vector<std::unique_ptr<SegmentProfiler>> segs(threads);
    bool done = false;
    while (!done) {
        size_t nb = 0;
        while (nb < threads && !done) {
            std::vector<MicroOp> &buf = bufs[nb];
            buf.clear();
            // A source may yield short spans mid-stream; accumulate to
            // the full window-aligned span so feed()'s alignment
            // contract holds no matter how the source chunks.
            while (buf.size() < span) {
                TraceSegment s = source.next(span - buf.size());
                if (s.empty()) {
                    done = true;
                    break;
                }
                buf.insert(buf.end(), s.data, s.data + s.size);
            }
            if (!buf.empty())
                nb++;
        }
        if (nb == 0)
            break;
        std::vector<uint64_t> bases(nb);
        uint64_t base = head.position();
        for (size_t i = 0; i < nb; ++i) {
            bases[i] = base;
            base += bufs[i].size();
        }
        parallelForShared(nb, threads, [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
                auto seg = std::make_unique<SegmentProfiler>(
                    cfg, SegmentProfiler::Role::Carry, bases[i]);
                seg->feed(bufs[i].data(), bufs[i].size());
                seg->seal();
                segs[i] = std::move(seg);
            }
        });
        for (size_t i = 0; i < nb; ++i)
            head.absorb(std::move(*segs[i]));
    }
    return std::move(head).finalize();
}

std::vector<Profile>
profileTraces(const std::vector<Trace> &traces,
              const std::vector<ProfilerConfig> &cfgs)
{
    if (!cfgs.empty() && cfgs.size() != 1 && cfgs.size() != traces.size())
        throw std::invalid_argument(
            "profileTraces: cfgs must hold 0, 1, or one config per trace");
    static const ProfilerConfig kDefault{};
    std::vector<Profile> out(traces.size());
    ThreadPool::shared().parallelFor(
        traces.size(), 1, [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
                const ProfilerConfig &cfg =
                    cfgs.empty() ? kDefault
                                 : (cfgs.size() == 1 ? cfgs[0]
                                                     : cfgs.at(i));
                MIPP_SPAN("profiler.pass");
                SegmentProfiler p(cfg);
                p.feed(traces[i].data(), traces[i].size());
                out[i] = std::move(p).finalize();
            }
        });
    return out;
}

} // namespace mipp
