/**
 * @file
 * Per-segment profiling state with explicit carry-in/carry-out handling.
 *
 * The profiler's single-pass state splits cleanly into two kinds:
 * window-local statistics (chain walks, per-window mixes) that only
 * depend on the uops of one sampled micro-trace, and continuous state
 * (last-touch timestamps for reuse distances, the branch global-history
 * register, per-op stride/spacing run state) that crosses segment
 * boundaries. A SegmentProfiler profiles one contiguous, window-aligned
 * range of the uop stream in one of two roles:
 *
 * - Role::Head is the streaming accumulator: it profiles its uops
 *   exactly like the classic sequential profiler (every observation
 *   resolves immediately), absorbs finished Carry segments in stream
 *   order, and finalizes into a Profile. Feeding one Head the whole
 *   trace IS the sequential profiler.
 *
 * - Role::Carry profiles a segment whose prefix state is unknown. Every
 *   observation that depends on upstream state is deferred into an
 *   explicit boundary record: first-local-touch reuse distances, the
 *   first max(historyBits, windowHistoryBits) branches (their global
 *   history is incomplete), the boundary-crossing stride/gap of each
 *   static op, and the order-sensitive dependence-chain float sums
 *   (kept as per-window samples). absorb() resolves every deferral
 *   against the true carried-in state and replays order-sensitive
 *   accumulations in stream order.
 *
 * The result is *bit-identical* to the sequential pass for any
 * window-aligned segmentation: every deferred observation resolves to
 * exactly the value the sequential profiler would have computed, and
 * every floating-point accumulation happens in the sequential order.
 * Segments must start at a multiple of the sampling window size so
 * micro-traces never straddle a boundary (profileTraceParallel enforces
 * this; unsampled configs fall back to the sequential path).
 */

#ifndef MIPP_PROFILER_SEGMENT_PROFILER_HH
#define MIPP_PROFILER_SEGMENT_PROFILER_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "profiler/profile.hh"
#include "profiler/profiler.hh"
#include "util/flat_map.hh"

namespace mipp {

class SegmentProfiler
{
  public:
    enum class Role { Head, Carry };

    /** Taken/not-taken counts for one (branch, history) pair. */
    struct TakenCounts {
        uint32_t taken = 0;
        uint32_t total = 0;
    };

    /**
     * @param baseUop absolute index of the segment's first uop; must be
     *        a multiple of the sampling window size (0 for Head).
     */
    explicit SegmentProfiler(const ProfilerConfig &cfg,
                             Role role = Role::Head, uint64_t baseUop = 0);

    /**
     * Profile the next @p n uops of this segment. Every feed except the
     * last must cover a whole number of sampling windows (so the next
     * feed starts window-aligned); unsampled configs allow one feed
     * only, because the whole stream forms a single micro-trace whose
     * span must stay contiguous in one buffer.
     */
    void feed(const MicroOp *ops, size_t n);

    /**
     * Carry only: mark the segment finished. Runs the per-segment part
     * of the merge preparation (joining each pending first-touch record
     * with the segment's final last-touch index), which parallel
     * drivers call from the worker so the serial absorb does one map
     * probe per distinct line. Idempotent; absorb() seals lazily if the
     * driver did not.
     */
    void seal();

    /**
     * Head only: fold a finished Carry segment into this profiler.
     * Segments must be absorbed in stream order — @p seg's baseUop must
     * equal this profiler's current position().
     */
    void absorb(SegmentProfiler &&seg);

    /** Head only: finalize the derived statistics into a Profile. */
    Profile finalize() &&;

    uint64_t baseUop() const { return base_; }
    /** Absolute uop position: base + fed uops (+ absorbed segments). */
    uint64_t position() const { return pos_; }

  private:
    template <bool InMt>
    void observeRange(const MicroOp *buf, uint64_t begin, uint64_t end);
    void observeMemory(const MicroOp &op, uint64_t uopIndex, bool inMt);
    void observeBranch(const MicroOp &op, bool inMt);
    void addGlobalBranch(uint64_t pc, bool taken, uint64_t hist);
    TakenCounts *branchTableFor(uint64_t pc);
    uint32_t newBranchTable();
    void finishMicroTrace();
    void walkRobSize(const MicroOp *mt, size_t mtLen, size_t i,
                     size_t median, WindowProfile &wp);
    uint32_t memOpIndex(uint64_t pc, bool isStore);
    bool findMemOp(uint64_t pc, uint32_t &idx) const;
    uint32_t createMemOp(uint64_t pc, bool isStore);
    void addTypeAdjustBin(bool accessIsStore, bool nominalIsStore,
                          size_t bin);
    void addTypeAdjustInfinite(bool accessIsStore, bool nominalIsStore);

    /** Config by value: Carry profilers run on pool workers and must
     *  not reference a caller frame. */
    ProfilerConfig cfg_;
    Profile profile_;
    bool carry_ = false;
    uint64_t base_ = 0;
    uint64_t pos_ = 0;

    // --- current feed span ------------------------------------------------
    const MicroOp *buf_ = nullptr; ///< buffer of the feed in progress
    uint64_t bufBase_ = 0;         ///< absolute index of buf_[0]
    uint64_t feedEnd_ = 0;         ///< absolute end of the current feed
    bool fedAny_ = false;

    // --- continuous (whole-segment) state ---------------------------------
    FlatMap<uint64_t> lastAccess_; // line -> mem idx
    uint64_t memIndex_ = 0;
    FlatMap<uint64_t> lastILine_;  // iline -> idx
    uint64_t iLineIndex_ = 0;
    uint64_t prevILine_ = ~0ULL;
    /**
     * Global branch statistics as pc -> dense history table: one
     * direct-indexed (or, off-window, hashed) pc lookup plus one
     * direct-indexed store per branch, instead of hashing the whole
     * (pc, history) pair into one large map. Direct slots hold
     * table+1 (0 = empty), same windowing scheme as memOpDirect_.
     */
    std::vector<uint32_t> branchDirect_;
    uint64_t branchPcBase_ = ~0ULL;
    FlatMap<uint32_t> branchPc_; // fallback: pc -> table index
    std::vector<TakenCounts> branchTables_; // tables * (histMask_ + 1)
    uint32_t numBranchTables_ = 0;
    /** Long histories (> 12 bits) skip the dense tables and hash the
     *  whole (pc, history) pair, like the per-micro-trace stats. */
    bool denseBranchTables_ = true;
    FlatMap<TakenCounts> sparseBranchStats_;
    uint64_t ghist_ = 0;
    /** Hoisted (1 << historyBits) - 1 masks for the branch-key hot path. */
    uint64_t histMask_ = 0;
    uint64_t winHistMask_ = 0;
    /**
     * pc -> memOps index. Program counters cluster in a small static
     * code footprint, so a direct-indexed table over a 64 KiB pc window
     * (anchored at the first memory pc seen) resolves essentially every
     * lookup with one load; pcs outside the window fall back to the
     * hash map. Slot value is idx+1 (0 = empty).
     */
    static constexpr size_t kPcWindow = 1u << 16;
    std::vector<uint32_t> memOpDirect_;
    uint64_t memPcBase_ = ~0ULL;
    FlatMap<uint32_t> memOpIndex_; // fallback for out-of-window pcs
    /**
     * Per-static-op running state, kept separate from StaticMemProfile
     * so each memory access touches one compact struct (hot fields in
     * the leading cache line) instead of the profile's large output
     * record. Materialized into profile_.memOps at finalize.
     */
    struct OpRunning {
        static constexpr size_t kInlineStrides = 4;
        static constexpr size_t kMaxStrides = 64;

        // -- first cache line: touched on every access ------------------
        uint64_t lastAddr = 0;
        uint64_t lastUopIdx = 0;
        uint64_t count = 0;
        uint64_t gapSum = 0;
        uint64_t gapCount = 0;
        uint64_t selfDependent = 0;
        bool seen = false;
        bool isStore = false; // nominal type (first occurrence)
        uint8_t nInline = 0;

        // -- stride counts: inline entries cover the common stride
        //    classes (thesis Fig 4.7: most static loads have <= 4
        //    dominant strides); the flat map takes the overflow up to
        //    the 64-distinct cap.
        std::array<uint64_t, kInlineStrides> strideKey{};
        std::array<uint64_t, kInlineStrides> strideCount{};
        FlatMap<uint64_t> strideOverflow;
        /** Carry only: overflow strides in first-arrival order, so the
         *  head can replay the global 64-distinct admission rule. */
        std::vector<uint64_t> overflowOrder;

        /** Reuse distances of this op's accesses (combined stream). */
        LogHistogram reuse;

        void
        addStride(uint64_t stride)
        {
            for (size_t k = 0; k < nInline; ++k) {
                if (strideKey[k] == stride) {
                    strideCount[k]++;
                    return;
                }
            }
            if (nInline < kInlineStrides) {
                strideKey[nInline] = stride;
                strideCount[nInline] = 1;
                nInline++;
                return;
            }
            if (kInlineStrides + strideOverflow.size() < kMaxStrides) {
                if (strideOverflow.empty())
                    strideOverflow.reserve(kMaxStrides);
                strideOverflow[stride]++;
            } else if (uint64_t *c = strideOverflow.find(stride)) {
                (*c)++;
            }
        }

        /** Carry: no admission cap (the global cap is replayed at
         *  absorb), arrival order retained. */
        void
        addStrideUncapped(uint64_t stride)
        {
            for (size_t k = 0; k < nInline; ++k) {
                if (strideKey[k] == stride) {
                    strideCount[k]++;
                    return;
                }
            }
            if (nInline < kInlineStrides) {
                strideKey[nInline] = stride;
                strideCount[nInline] = 1;
                nInline++;
                return;
            }
            if (strideOverflow.empty())
                strideOverflow.reserve(kMaxStrides);
            auto [c, fresh] = strideOverflow.tryEmplace(stride, 0);
            if (fresh)
                overflowOrder.push_back(stride);
            c += 1;
        }

        /**
         * Head, during absorb: @p n occurrences of @p stride arriving
         * at this point of the stream. Admission matches the sequential
         * per-occurrence rule exactly: if the first occurrence is
         * admitted (inline, or under the 64-distinct cap) all @p n
         * count; a stride first seen at a full cap never enters, so
         * none of its occurrences would have counted sequentially
         * either.
         */
        void
        addStrideN(uint64_t stride, uint64_t n)
        {
            for (size_t k = 0; k < nInline; ++k) {
                if (strideKey[k] == stride) {
                    strideCount[k] += n;
                    return;
                }
            }
            if (nInline < kInlineStrides) {
                strideKey[nInline] = stride;
                strideCount[nInline] = n;
                nInline++;
                return;
            }
            if (kInlineStrides + strideOverflow.size() < kMaxStrides) {
                if (strideOverflow.empty())
                    strideOverflow.reserve(kMaxStrides);
                strideOverflow[stride] += n;
            } else if (uint64_t *c = strideOverflow.find(stride)) {
                *c += n;
            }
        }
    };
    std::vector<OpRunning> opRunning_;
    std::vector<uint64_t> coldLoadUopIdx_;
    /** Exact corrections for accesses whose type differs from their
     *  static op's nominal type ([0] loads, [1] stores). */
    struct TypeAdjust {
        LogHistogram add;
        LogHistogram sub;
    };
    std::array<TypeAdjust, 2> typeAdjust_;

    // --- per-micro-trace state --------------------------------------------
    // Micro-traces are contiguous runs of the feed buffer, so instead of
    // copying uops we keep a zero-copy [mtStart_, mtStart_ + mtLen_)
    // absolute-index span into the buffer being fed.
    uint64_t mtStart_ = 0;
    size_t mtLen_ = 0;
    FlatMap<TakenCounts> mtBranchStats_;
    /** Per-micro-trace occurrence counts / first positions, indexed
     *  directly by memOps index (dense small ints — no hashing). The
     *  touched list makes the end-of-micro-trace sweep and reset
     *  proportional to the ops actually seen. */
    std::vector<uint32_t> mtMemCount_;
    std::vector<uint32_t> mtFirstPos_;
    std::vector<uint32_t> mtTouched_;
    uint32_t mtColdMisses_ = 0;

    // --- carry-out boundary state (Role::Carry only) ----------------------
    static constexpr uint32_t kNoWindow = ~0u;
    /** First local touch of a data line: reuse distance unknowable
     *  until the upstream last-touch map arrives. Exactly one entry per
     *  distinct line touched by the segment; seal() fills in the
     *  segment's *last* touch of the line so absorb advances the global
     *  last-touch map in the same single probe that resolves the first
     *  touch. */
    struct PendingLine {
        uint64_t line;
        uint64_t localMemIdx;
        uint64_t lastLocalIdx = 0; ///< filled by seal()
        uint64_t uopIndex; ///< absolute, for cold-burstiness windows
        uint32_t op;       ///< local memOps index
        uint32_t window;   ///< local windows index or kNoWindow
        bool isStore;
    };
    /** First local touch of an instruction line. Entry 0 is the
     *  segment-start access, which is *tentative*: if the previous
     *  segment ends in the same i-line, the sequential pass would see
     *  no transition there at all. */
    struct PendingILine {
        uint64_t iline;
        uint64_t localIdx;
        uint64_t lastLocalIdx = 0; ///< filled by seal()
    };
    struct PendingBranch {
        uint64_t pc;
        bool taken;
    };
    /** A micro-trace whose first branch fell into the pending-history
     *  prefix: its (pc, windowed-history) stats are recomputed at
     *  absorb from the full ordered branch list. */
    struct AffectedWindow {
        uint32_t window;
        uint64_t firstBranchOrdinal;
        std::vector<PendingBranch> branches;
    };
    /** Boundary-crossing per-op state: the first access's stride/gap
     *  joins the previous segment's last access at absorb. */
    struct OpBoundary {
        uint64_t firstAddr = 0;
        uint64_t firstUop = 0;
        bool firstSelfDep = false;
        /** Locally-resolved accesses whose type differs from the LOCAL
         *  nominal type; re-attributed against the global nominal at
         *  absorb (integer bins, so the re-attribution is exact). */
        LogHistogram minorityReuse;
    };
    /** One chain-walk observation, deferred so the head can replay the
     *  order-sensitive double accumulation in stream order. */
    struct ChainSample {
        double ap, abp, cp;
        bool hasBranch;
    };

    std::vector<PendingLine> pendingLines_;
    std::vector<PendingILine> pendingILines_;
    std::vector<PendingBranch> pendingBranches_;
    std::vector<AffectedWindow> affectedWindows_;
    std::vector<OpBoundary> opBoundary_; ///< parallel to opRunning_
    std::vector<std::vector<ChainSample>> chainSamples_; ///< per rob idx
    uint64_t branchOrdinal_ = 0;
    /** Carry: number of leading branches whose global history is
     *  incomplete (max(historyBits, windowHistoryBits)); 0 for Head. */
    uint64_t pendingBranchBudget_ = 0;
    bool mtRecordBranches_ = false;
    bool sealed_ = false;
};

} // namespace mipp

#endif // MIPP_PROFILER_SEGMENT_PROFILER_HH
