/**
 * @file
 * The micro-architecture independent profiler (thesis Ch. 3-5).
 *
 * One pass over a uop trace produces a Profile: instruction mix, dependence
 * chains for a set of ROB sizes, linear branch entropy, reuse-distance
 * distributions, cold-miss burstiness and per-static-load stride / spacing /
 * dependence distributions. Core statistics are collected on sampled
 * micro-traces (thesis §5.1); memory reuse, strides and branch history are
 * tracked continuously so that long-range reuse is observed, mirroring
 * StatStack's whole-run burst sampling (§5.4).
 */

#ifndef MIPP_PROFILER_PROFILER_HH
#define MIPP_PROFILER_PROFILER_HH

#include <string>

#include "profiler/profile.hh"
#include "trace/trace.hh"

namespace mipp {

/** Profiling knobs. */
struct ProfilerConfig {
    std::string name = "workload";
    /** Micro-trace / window geometry; default 1000-uop micro-traces every
     *  20k uops (the thesis rate, scaled to this framework's trace sizes). */
    SamplingConfig sampling{1000, 20000};
    /** ROB sizes for which dependence chains are profiled (thesis §5.2). */
    std::vector<uint32_t> robSizes = defaultRobSizes();
    /** Global-history length for linear branch entropy (bits). */
    uint32_t historyBits = 8;
    /** History bits for the cheap per-window entropy estimate. */
    uint32_t windowHistoryBits = 4;
    /** Run the independent per-ROB-size window walks on the shared
     *  thread pool when the micro-trace is large enough. Results are
     *  identical either way (each ROB size writes disjoint state). */
    bool parallelWindows = true;
};

/** Profile @p trace. Deterministic; no micro-architecture inputs. */
Profile profileTrace(const Trace &trace, const ProfilerConfig &cfg = {});

/** Knobs for the segment-parallel profiling drivers. */
struct ParallelProfileOptions {
    /** Worker count; 0 = the shared pool's full concurrency. */
    unsigned threads = 0;
    /**
     * Segment length in uops (rounded up to whole sampling windows);
     * 0 derives it — an even split across threads when the stream
     * length is known, 64 windows per segment otherwise.
     */
    size_t segmentUops = 0;
};

/**
 * Profile @p trace split into window-aligned segments profiled
 * concurrently on the shared thread pool and merged in stream order.
 * The result is bit-identical to profileTrace for every trace, thread
 * count and segment size: all cross-segment state (reuse last-touch
 * maps, branch global history, per-op stride runs, order-sensitive
 * float accumulations) is carried explicitly across the boundaries.
 * Unsampled configs and single-thread requests fall back to the
 * sequential pass.
 */
Profile profileTraceParallel(const Trace &trace,
                             const ProfilerConfig &cfg = {},
                             const ParallelProfileOptions &opts = {});

class TraceSource;

/**
 * Profile a uop stream without materializing it: O(chunk) resident
 * uops. Identical to materializing the stream and calling profileTrace
 * (unsampled configs buffer the whole stream, which forms one
 * micro-trace).
 */
Profile profileSource(TraceSource &source, const ProfilerConfig &cfg = {});

/**
 * Segment-parallel profileSource: batches of segments are copied out of
 * the source, profiled concurrently and merged in stream order. Peak
 * memory is O(threads * segment) uops. Bit-identical to profileTrace
 * on the materialized stream.
 */
Profile profileSourceParallel(TraceSource &source,
                              const ProfilerConfig &cfg = {},
                              const ParallelProfileOptions &opts = {});

/**
 * Profile a batch of workloads, parallel across traces on the shared
 * thread pool. @p cfgs must hold either one config (broadcast to every
 * trace) or exactly one per trace; empty means all-default configs.
 * Equivalent to calling profileTrace per trace, in order.
 */
std::vector<Profile> profileTraces(const std::vector<Trace> &traces,
                                   const std::vector<ProfilerConfig> &cfgs = {});

} // namespace mipp

#endif // MIPP_PROFILER_PROFILER_HH
