/**
 * @file
 * Shared command-line flags for the sweep-driving example programs
 * (design_space_exploration and mipp_cli's `sweep` subcommand):
 *
 *   --mode model|pareto|paired   SweepMode selection
 *   --streaming                  batched streaming sweep (ModelOnlyPareto:
 *                                O(front) memory, no point grid)
 *   --threads N                  sweep concurrency (0 = all cores)
 *   --validate N                 off-front validation simulations per
 *                                workload (ModelThenSimPareto)
 *   --full                       243-point space instead of the 27-point
 *                                subspace
 *   --uops N                     trace length (caller-defined default)
 */

#ifndef MIPP_EXAMPLES_SWEEP_FLAGS_HH
#define MIPP_EXAMPLES_SWEEP_FLAGS_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dse/explorer.hh"

namespace mipp::examples {

struct SweepFlags {
    SweepOptions sopts{SweepMode::ModelOnly, 0, 2};
    bool full = false;
    size_t uops = 0;  ///< caller sets the default before parse()

    /**
     * Parse @p argv[0..argc); on an unknown flag, print a usage line
     * prefixed with @p prog and return false.
     */
    bool
    parse(int argc, char **argv, const char *prog)
    {
        for (int i = 0; i < argc; ++i) {
            // Missing value: report instead of silently parsing as 0.
            auto next = [&]() -> const char * {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "%s requires a value\n",
                                 argv[i]);
                    return nullptr;
                }
                return argv[++i];
            };
            const char *v = nullptr;
            if (!std::strcmp(argv[i], "--mode")) {
                if (!(v = next()))
                    return false;
                std::string m = v;
                if (m == "model")
                    sopts.mode = SweepMode::ModelOnly;
                else if (m == "pareto")
                    sopts.mode = SweepMode::ModelThenSimPareto;
                else if (m == "paired")
                    sopts.mode = SweepMode::Paired;
                else {
                    std::fprintf(
                        stderr,
                        "unknown --mode %s (model|pareto|paired)\n",
                        m.c_str());
                    return false;
                }
            } else if (!std::strcmp(argv[i], "--streaming")) {
                sopts.mode = SweepMode::ModelOnlyPareto;
            } else if (!std::strcmp(argv[i], "--threads")) {
                if (!(v = next()))
                    return false;
                sopts.threads = static_cast<unsigned>(std::atoi(v));
            } else if (!std::strcmp(argv[i], "--validate")) {
                if (!(v = next()))
                    return false;
                sopts.validationSamples =
                    static_cast<size_t>(std::atoll(v));
            } else if (!std::strcmp(argv[i], "--full")) {
                full = true;
            } else if (!std::strcmp(argv[i], "--uops")) {
                if (!(v = next()))
                    return false;
                uops = std::strtoull(v, nullptr, 10);
            } else {
                std::fprintf(stderr,
                             "usage: %s [--mode model|pareto|paired] "
                             "[--streaming] [--threads N] [--validate N] "
                             "[--full] [--uops N]\n",
                             prog);
                return false;
            }
        }
        return true;
    }
};

} // namespace mipp::examples

#endif // MIPP_EXAMPLES_SWEEP_FLAGS_HH
