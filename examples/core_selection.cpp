/**
 * @file
 * Application-specific core selection under a power budget
 * (thesis §7.1-7.2): for each workload, pick the fastest design that
 * stays under a configurable power cap — using only the model.
 */

#include <cstdio>
#include <vector>

#include "model/interval_model.hh"
#include "power/power_model.hh"
#include "profiler/profiler.hh"
#include "uarch/design_space.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace mipp;

    double budget = argc > 1 ? std::atof(argv[1]) : 8.0;
    std::printf("power budget: %.1f W\n\n", budget);

    DesignSpace space = DesignSpace::small();
    std::printf("%-16s %-30s %9s %8s\n", "workload", "selected core",
                "CPI", "watts");
    for (const char *name :
         {"dense_compute", "stream_add", "ptr_chase", "branchy",
          "matrix_tile"}) {
        WorkloadSpec spec = suiteWorkload(name);
        Trace trace = generateWorkload(spec, 150000);
        Profile profile = profileTrace(trace, {.name = spec.name});

        int best = -1;
        double bestCpi = 0, bestW = 0;
        for (size_t i = 0; i < space.size(); ++i) {
            ModelResult m = evaluateModel(profile, space[i]);
            double watts = computePower(m.activity, space[i]).total();
            if (watts > budget)
                continue;
            if (best < 0 || m.cpiPerUop() < bestCpi) {
                best = static_cast<int>(i);
                bestCpi = m.cpiPerUop();
                bestW = watts;
            }
        }
        if (best < 0)
            std::printf("%-16s %-30s\n", name, "(infeasible)");
        else
            std::printf("%-16s %-30s %9.3f %8.2f\n", name,
                        space[best].name.c_str(), bestCpi, bestW);
    }
    return 0;
}
