/**
 * @file
 * Quickstart: the complete profile-once / predict-instantly flow.
 *
 *   1. Generate (or otherwise obtain) a micro-op trace.
 *   2. Profile it once — micro-architecture independent.
 *   3. Evaluate the analytical model for any core configuration.
 *   4. (Optional) cross-check against the cycle-level simulator.
 */

#include <cstdio>

#include "model/interval_model.hh"
#include "power/power_model.hh"
#include "profiler/profiler.hh"
#include "sim/ooo_core.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace mipp;

    // 1. A synthetic "compiler-like" workload of 200k micro-ops.
    WorkloadSpec spec = suiteWorkload("mix_mid");
    Trace trace = generateWorkload(spec, 200000);
    std::printf("workload: %s, %zu uops (%.2f uops/instruction)\n",
                spec.name.c_str(), trace.size(),
                trace.uopsPerInstruction());

    // 2. Profile once. The profile contains only micro-architecture
    //    independent statistics (instruction mix, dependence chains,
    //    branch entropy, reuse distances, stride distributions).
    Profile profile = profileTrace(trace, {.name = spec.name});
    std::printf("profiled %lu uops, branch entropy %.3f\n",
                static_cast<unsigned long>(profile.profiledUops),
                profile.branch.entropy());

    // 3. Predict performance and power for a Nehalem-like machine.
    CoreConfig cfg = CoreConfig::nehalemReference();
    ModelResult model = evaluateModel(profile, cfg);
    PowerBreakdown power = computePower(model.activity, cfg);

    std::printf("\nanalytical model on '%s':\n", cfg.name.c_str());
    std::printf("  predicted CPI   %.3f (Deff %.2f, MLP %.2f)\n",
                model.cpiPerUop(), model.deff, model.mlp);
    std::printf("  CPI stack: base %.3f | branch %.3f | icache %.3f | "
                "LLC %.3f | DRAM %.3f\n",
                model.stack.base / model.uops,
                model.stack.branch / model.uops,
                model.stack.icache / model.uops,
                model.stack.llcHit / model.uops,
                model.stack.dram / model.uops);
    std::printf("  predicted power %.2f W (%.2f W static)\n",
                power.total(), power.staticPower);

    // 4. Cross-check against the cycle-level reference simulator.
    SimResult sim = simulate(trace, cfg);
    std::printf("\ncycle-level simulator: CPI %.3f  ->  model error "
                "%+.1f%%\n",
                sim.cpiPerUop(),
                100.0 * (model.cpiPerUop() - sim.cpiPerUop()) /
                    sim.cpiPerUop());
    return 0;
}
