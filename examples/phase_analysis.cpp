/**
 * @file
 * Phase analysis (thesis §6.5): per-window CPI over time from the
 * per-micro-trace model evaluation, rendered as an ASCII sparkline next
 * to the simulator's measured series.
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "model/interval_model.hh"
#include "profiler/profiler.hh"
#include "sim/ooo_core.hh"
#include "workloads/workload.hh"

namespace {

std::string
sparkline(const std::vector<double> &v, double lo, double hi)
{
    static const char *levels[] = {" ", ".", ":", "-", "=", "+", "*",
                                   "#"};
    std::string out;
    for (double x : v) {
        int idx = static_cast<int>((x - lo) / (hi - lo + 1e-9) * 7.99);
        out += levels[std::clamp(idx, 0, 7)];
    }
    return out;
}

} // namespace

int
main()
{
    using namespace mipp;

    PhasedSpec spec = phasedSuite()[0]; // compute <-> memory phases
    Trace trace = generatePhased(spec);
    CoreConfig cfg = CoreConfig::nehalemReference();

    SimOptions so;
    so.cpiWindowUops = 20000;
    SimResult sim = simulate(trace, cfg, so);
    Profile profile = profileTrace(trace, {.name = spec.name});
    ModelResult model = evaluateModel(profile, cfg);

    size_t n = std::min(sim.windowCpi.size(), model.windowCpi.size());
    std::vector<double> simV(sim.windowCpi.begin(),
                             sim.windowCpi.begin() + n);
    std::vector<double> modV(model.windowCpi.begin(),
                             model.windowCpi.begin() + n);
    double hi = std::max(*std::max_element(simV.begin(), simV.end()),
                         *std::max_element(modV.begin(), modV.end()));

    std::printf("workload %s: %zu windows of 20k uops, CPI range "
                "0..%.2f\n\n", spec.name.c_str(), n, hi);
    std::printf("sim   |%s|\n", sparkline(simV, 0, hi).c_str());
    std::printf("model |%s|\n\n", sparkline(modV, 0, hi).c_str());

    std::printf("%-8s %10s %10s\n", "window", "sim CPI", "model CPI");
    for (size_t i = 0; i < n; ++i)
        std::printf("%-8zu %10.3f %10.3f\n", i, simV[i], modV[i]);
    return 0;
}
