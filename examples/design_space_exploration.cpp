/**
 * @file
 * Design-space exploration: the paper's motivating use case.
 *
 * One profiling run per workload, then the analytical model sweeps a
 * 27-point design space in milliseconds and extracts the predicted
 * performance/power Pareto frontier.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "dse/pareto.hh"
#include "model/interval_model.hh"
#include "power/power_model.hh"
#include "profiler/profiler.hh"
#include "uarch/design_space.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace mipp;

    WorkloadSpec spec = suiteWorkload("matrix_tile");
    Trace trace = generateWorkload(spec, 200000);
    Profile profile = profileTrace(trace, {.name = spec.name});
    std::printf("profiled %s once (%zu uops)\n\n", spec.name.c_str(),
                trace.size());

    DesignSpace space = DesignSpace::small();
    std::vector<Objective> objectives;

    auto t0 = std::chrono::steady_clock::now();
    for (const auto &cfg : space.configs()) {
        ModelResult m = evaluateModel(profile, cfg);
        PowerBreakdown p = computePower(m.activity, cfg);
        objectives.push_back({m.cpiPerUop(), p.total()});
    }
    auto t1 = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

    std::printf("evaluated %zu design points in %.1f ms "
                "(%.2f ms per design)\n\n",
                space.size(), ms, ms / space.size());

    std::printf("%-30s %9s %8s %7s\n", "design", "CPI", "watts",
                "Pareto");
    auto front = paretoFront(objectives);
    std::vector<bool> optimal(space.size(), false);
    for (size_t i : front)
        optimal[i] = true;
    for (size_t i = 0; i < space.size(); ++i) {
        std::printf("%-30s %9.3f %8.2f %7s\n", space[i].name.c_str(),
                    objectives[i].first, objectives[i].second,
                    optimal[i] ? "*" : "");
    }
    std::printf("\n%zu of %zu designs are predicted Pareto-optimal\n",
                front.size(), space.size());
    return 0;
}
