/**
 * @file
 * Design-space exploration: the paper's motivating use case, end to end.
 *
 * One profiling run per workload, then the sweep driver evaluates the
 * design space in the selected mode:
 *
 *   --mode model    analytical model only (default; milliseconds for the
 *                   full space — this is how million-point spaces scale)
 *   --mode pareto   model everywhere, then detailed simulation on the
 *                   model-predicted Pareto front + a validation sample
 *                   (the paper's §7 prune-then-validate workflow)
 *   --mode paired   simulate + model every point (ground-truth reference;
 *                   slow — O(points x sim))
 *   --streaming     batched streaming sweep (ModelOnlyPareto): results
 *                   fold into per-workload Pareto accumulators as they
 *                   are produced, so the point grid is never materialized
 *                   and memory stays O(front) however large the space
 *
 * Other flags:
 *   --threads N     sweep concurrency (0 = all cores, 1 = serial)
 *   --validate N    extra simulated off-front configs per workload
 *                   (pareto mode; default 2)
 *   --full          243-point space instead of the 27-point subspace
 *   --uops N        trace length per workload (default 120000)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dse/explorer.hh"
#include "dse/pareto.hh"
#include "profiler/profiler.hh"
#include "sweep_flags.hh"
#include "uarch/design_space.hh"
#include "workloads/workload.hh"

namespace {

using namespace mipp;

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mipp;

    examples::SweepFlags flags;
    flags.uops = 120000;
    if (!flags.parse(argc - 1, argv + 1, argv[0]))
        return 2;
    const SweepOptions &sopts = flags.sopts;
    const bool full = flags.full;
    const size_t uops = flags.uops;

    std::vector<Trace> traces;
    std::vector<Profile> profiles;
    std::vector<std::string> names;
    auto t0 = std::chrono::steady_clock::now();
    for (const char *name : {"matrix_tile", "ptr_chase", "balanced_mix"}) {
        WorkloadSpec spec = suiteWorkload(name);
        traces.push_back(generateWorkload(spec, uops));
        profiles.push_back(profileTrace(traces.back(), {.name = name}));
        names.push_back(name);
    }
    std::printf("profiled %zu workloads once (%.1f ms, %zu uops each)\n\n",
                profiles.size(), msSince(t0), uops);

    DesignSpace space = full ? DesignSpace() : DesignSpace::small();

    t0 = std::chrono::steady_clock::now();
    SweepResult r = sweepEx(traces, profiles, space.configs(), {}, sopts);
    double ms = msSince(t0);

    const char *modeName =
        sopts.mode == SweepMode::ModelOnly
            ? "model-only"
            : (sopts.mode == SweepMode::Paired
                   ? "paired"
                   : (sopts.mode == SweepMode::ModelOnlyPareto
                          ? "streaming-pareto"
                          : "model+sim-pareto"));
    size_t points = r.nWorkloads * r.nConfigs;
    std::printf("swept %zu points (%zu workloads x %zu configs) in "
                "%.1f ms [%s]\n",
                points, r.nWorkloads, r.nConfigs, ms, modeName);
    std::printf("detailed simulations spent: %zu of %zu points "
                "(%.3f ms per point overall)\n\n",
                r.simInvocations, points, points ? ms / points : 0);

    for (size_t wi = 0; wi < r.nWorkloads; ++wi) {
        // Model-front modes (including streaming, which never
        // materializes the point grid) deliver the front points
        // directly; Paired derives them here so every mode prints the
        // same report.
        std::vector<SweepPoint> front;
        if (wi < r.frontPoints.size() &&
            sopts.mode != SweepMode::Paired) {
            front = r.frontPoints[wi];
        } else {
            std::vector<Objective> obj;
            for (size_t ci = 0; ci < r.nConfigs; ++ci)
                obj.push_back({r.at(wi, ci).modelCpi,
                               r.at(wi, ci).modelWatts});
            for (size_t ci : paretoFront(obj))
                front.push_back(r.at(wi, ci));
        }
        std::printf("%s — predicted Pareto front (%zu of %zu designs):\n",
                    names[wi].c_str(), front.size(), r.nConfigs);
        for (const SweepPoint &pt : front) {
            std::printf("  %-30s CPI %7.3f  W %6.2f",
                        space[pt.configIdx].name.c_str(), pt.modelCpi,
                        pt.modelWatts);
            if (pt.simulated)
                std::printf("   (sim: %7.3f / %6.2f, err %+.1f%%)",
                            pt.simCpi, pt.simWatts, 100 * pt.cpiError());
            std::printf("\n");
        }
        std::printf("\n");
    }
    return 0;
}
