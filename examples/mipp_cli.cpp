/**
 * @file
 * mipp_cli — command-line front end mirroring the paper's released
 * AIP (profiler) + PMT (modeling tool) pair:
 *
 *   mipp_cli profile <workload> <out.profile> [uops]
 *                    [--threads N] [--segment-uops M]
 *       Generate the named suite workload and profile it once.
 *       --threads > 1 profiles window-aligned segments in parallel
 *       (bit-identical result); --segment-uops overrides the split.
 *
 *   mipp_cli evaluate <in.profile> [--width N] [--rob N] [--l1d KB]
 *                     [--l2 KB] [--l3 MB] [--freq GHZ] [--prefetcher]
 *       Evaluate the analytical model for one design point.
 *
 *   mipp_cli sweep <in.profile> [--mode model|pareto|paired]
 *                  [--threads N] [--validate N] [--full] [--uops N]
 *       Sweep the design space and print the Pareto frontier.
 *       `model` (default) evaluates the analytical model only;
 *       `pareto` additionally simulates the model-predicted front plus a
 *       validation sample (the paper's prune-then-validate workflow);
 *       `paired` simulates every point. Simulation modes regenerate the
 *       suite workload named in the profile. `--full` uses the 243-point
 *       space instead of the 27-point subspace.
 *
 *   mipp_cli report accuracy [--grid ci|default|wide] [--uops N]
 *                  [--threads N] [--full] [--no-phased] [--workload NAME]...
 *                  [--json out.json] [--baseline golden.json] [--margin P]
 *       Run the suite-wide accuracy-validation harness: every suite (and
 *       phased) workload through both the cycle-level simulator and the
 *       analytical model over a design-point grid, with per-CPI-component
 *       error reporting and internal-consistency invariants enforced on
 *       both sides. `--json` writes the machine-readable report;
 *       `--baseline` gates against a golden report's MAPEs (exit 1 on
 *       regression beyond `--margin` percentage points, default 2).
 *
 *   mipp_cli serve --socket PATH [--workers N] [--queue N]
 *                  [--profiles N] [--deadline-ms D] [--failpoints]
 *                  [--stats-interval-ms D]
 *       Run the persistent DSE daemon on a Unix-domain socket speaking
 *       the JSON-lines protocol (see src/serve/server.hh and the README
 *       "Serving & fault tolerance" section). Runs until SIGINT/SIGTERM.
 *       `--stats-interval-ms` logs a periodic stats line to stderr.
 *
 *   mipp_cli report metrics --socket PATH [--prometheus] [--out FILE]
 *       Fetch the full metrics registry from a running daemon (the
 *       `metrics` op) as JSON or Prometheus text exposition.
 *
 *   mipp_cli list
 *       List the available suite workloads.
 *
 * Any command accepts `--trace-json FILE`: a SpanRecorder is installed
 * for the whole run and the collected spans are written as Chrome
 * trace-event JSON on exit (including the SIGINT path of `serve`).
 * Load the file at chrome://tracing or https://ui.perfetto.dev.
 *
 * Errors are structured: input-shaped failures (bad profile bytes,
 * unknown workload, empty design space) print their Status code and
 * exit 2; anything else exits 1.
 */

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include <vector>

#include "cli/cli_help.hh"
#include "dse/explorer.hh"
#include "dse/pareto.hh"
#include "model/interval_model.hh"
#include "obs/trace.hh"
#include "power/power_model.hh"
#include "profiler/profile_io.hh"
#include "profiler/profiler.hh"
#include "serve/server.hh"
#include "sweep_flags.hh"
#include "trace/mtf.hh"
#include "trace/mtf_text.hh"
#include "util/failpoint.hh"
#include "util/json.hh"
#include "util/status.hh"
#include "uarch/design_space.hh"
#include "validate/accuracy.hh"
#include "validate/calibrate.hh"
#include "workloads/workload.hh"

namespace {

using namespace mipp;

int
usage()
{
    // Rendered from the one help table (src/cli/cli_help.{hh,cc}) so
    // the CLI, `help`, `--help` and docs/ cannot diverge.
    std::fputs(cli::overviewHelp().c_str(), stderr);
    return 2;
}

int
cmdHelp(int argc, char **argv)
{
    if (argc < 1) {
        std::fputs(cli::overviewHelp().c_str(), stdout);
        return 0;
    }
    std::string topic = argv[0];
    if (argc >= 2)
        topic += std::string(" ") + argv[1]; // "report accuracy" etc.
    std::string text = cli::detailedHelp(topic);
    if (text.empty() && argc >= 2)
        text = cli::detailedHelp(argv[0]); // fall back to the group
    if (text.empty()) {
        std::fprintf(stderr, "no help for '%s'\n\n", topic.c_str());
        return usage();
    }
    std::fputs(text.c_str(), stdout);
    return 0;
}

/** True when any argument asks for help (--help/-h). */
bool
wantsHelp(int argc, char **argv)
{
    for (int i = 0; i < argc; ++i)
        if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h"))
            return true;
    return false;
}

int
cmdList()
{
    for (const auto &s : workloadSuite())
        std::printf("%s\n", s.name.c_str());
    return 0;
}

/** "path/to/stream_add.mtf" → "stream_add" (default profile name). */
std::string
traceBaseName(const std::string &path)
{
    size_t slash = path.find_last_of('/');
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    size_t dot = base.find_last_of('.');
    if (dot != std::string::npos && dot > 0)
        base.resize(dot);
    return base.empty() ? "trace" : base;
}

int
cmdProfile(int argc, char **argv)
{
    size_t uops = 200000;
    ParallelProfileOptions popts;
    unsigned threads = 1; // sequential by default: fully reproducible
                          // timing, and small workloads gain nothing
    std::string tracePath, name, outPath;
    std::vector<std::string> positional;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
            threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (!std::strcmp(argv[i], "--segment-uops") &&
                   i + 1 < argc) {
            popts.segmentUops = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc) {
            tracePath = argv[++i];
        } else if (!std::strcmp(argv[i], "--name") && i + 1 < argc) {
            name = argv[++i];
        } else if (argv[i][0] != '-') {
            positional.push_back(argv[i]);
        } else {
            std::fprintf(stderr, "unknown profile option %s\n", argv[i]);
            return usage();
        }
    }
    popts.threads = threads;

    // With --trace the positionals are <out> [uops-ignored]; otherwise
    // <workload> <out> [uops].
    size_t need = tracePath.empty() ? 2 : 1;
    if (positional.size() < need)
        return usage();

    Profile p;
    size_t gotUops = 0;
    if (!tracePath.empty()) {
        outPath = positional[0];
        if (name.empty())
            name = traceBaseName(tracePath);
        std::unique_ptr<MtfTraceSource> source;
        throwIfError(MtfTraceSource::open(tracePath, source));
        ProfilerConfig cfg;
        cfg.name = name;
        // Streaming ingestion: O(segment) resident uops; bit-identical
        // across thread counts (the parallel parity suite pins this).
        p = threads == 1 ? profileSource(*source, cfg)
                         : profileSourceParallel(*source, cfg, popts);
        gotUops = static_cast<size_t>(source->info().uopCount);
    } else {
        outPath = positional[1];
        if (positional.size() >= 3)
            uops = std::strtoull(positional[2].c_str(), nullptr, 10);
        WorkloadSpec spec = suiteWorkload(positional[0]);
        if (name.empty())
            name = spec.name;
        Trace t = generateWorkload(spec, uops);
        // Bit-identical either way; --threads only changes wall-clock.
        p = threads == 1
                ? profileTrace(t, {.name = name})
                : profileTraceParallel(t, {.name = name}, popts);
        gotUops = t.size();
    }
    if (!saveProfile(p, outPath)) {
        std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
        return 1;
    }
    std::printf("profiled %s (%zu uops) -> %s\n", name.c_str(), gotUops,
                outPath.c_str());
    return 0;
}

int
cmdTrace(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    std::string sub = argv[0];
    if (sub == "record") {
        if (argc < 3)
            return usage();
        size_t uops = argc >= 4
                          ? std::strtoull(argv[3], nullptr, 10)
                          : 200000;
        WorkloadSpec spec = suiteWorkload(argv[1]);
        Trace t = generateWorkload(spec, uops);
        throwIfError(saveMtf(t, argv[2]));
        std::printf("recorded %s (%zu uops) -> %s\n", spec.name.c_str(),
                    t.size(), argv[2]);
        return 0;
    }
    if (sub == "convert") {
        if (argc < 3)
            return usage();
        uint64_t uops = 0;
        throwIfError(convertTextFileToMtf(argv[1], argv[2], uops));
        std::printf("converted %s (%llu uops) -> %s\n", argv[1],
                    static_cast<unsigned long long>(uops), argv[2]);
        return 0;
    }
    if (sub == "dump") {
        if (argc < 2)
            return usage();
        if (argc >= 3) {
            std::ofstream os(argv[2], std::ios::binary);
            if (!os) {
                std::fprintf(stderr, "cannot write %s\n", argv[2]);
                return 1;
            }
            throwIfError(dumpMtfToText(argv[1], os));
        } else {
            throwIfError(dumpMtfToText(argv[1], std::cout));
        }
        return 0;
    }
    if (sub == "info") {
        if (argc < 2)
            return usage();
        MtfReader reader;
        throwIfError(MtfReader::open(argv[1], reader));
        const MtfInfo &info = reader.info();
        std::printf("mtf      %s\n", argv[1]);
        std::printf("version  %u\n", info.version);
        std::printf("uops     %llu\n",
                    static_cast<unsigned long long>(info.uopCount));
        std::printf("bytes    %llu (%.2f B/uop encoded)\n",
                    static_cast<unsigned long long>(info.fileBytes),
                    info.bytesPerUop());
        std::printf("checksum ok\n");
        return 0;
    }
    std::fprintf(stderr, "unknown trace subcommand '%s'\n", sub.c_str());
    return usage();
}

CoreConfig
parseConfig(int argc, char **argv)
{
    CoreConfig cfg = CoreConfig::nehalemReference();
    for (int i = 0; i < argc; ++i) {
        auto next = [&]() -> double {
            return i + 1 < argc ? std::atof(argv[++i]) : 0;
        };
        if (!std::strcmp(argv[i], "--width"))
            cfg.setWidth(static_cast<uint32_t>(next()));
        else if (!std::strcmp(argv[i], "--rob"))
            scaleBackEnd(cfg, static_cast<uint32_t>(next()));
        else if (!std::strcmp(argv[i], "--l1d"))
            cfg.l1d.sizeBytes = static_cast<uint32_t>(next()) * 1024;
        else if (!std::strcmp(argv[i], "--l2"))
            cfg.l2.sizeBytes = static_cast<uint32_t>(next()) * 1024;
        else if (!std::strcmp(argv[i], "--l3"))
            cfg.l3.sizeBytes =
                static_cast<uint32_t>(next()) * 1024 * 1024;
        else if (!std::strcmp(argv[i], "--freq"))
            cfg.freqGHz = next();
        else if (!std::strcmp(argv[i], "--prefetcher"))
            cfg.prefetcherEnabled = true;
    }
    return cfg;
}

int
cmdEvaluate(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    Profile p = loadProfile(argv[0]);
    CoreConfig cfg = parseConfig(argc - 1, argv + 1);

    ModelResult m = evaluateModel(p, cfg);
    PowerBreakdown pw = computePower(m.activity, cfg);
    EnergyMetrics em = energyMetrics(m.cycles, pw, cfg);

    std::printf("profile   %s (%lu uops)\n", p.name.c_str(),
                static_cast<unsigned long>(p.totalUops));
    std::printf("design    width %u, ROB %u, L1D %u KB, L2 %u KB, "
                "L3 %u MB, %.2f GHz\n",
                cfg.dispatchWidth, cfg.robSize,
                cfg.l1d.sizeBytes / 1024, cfg.l2.sizeBytes / 1024,
                cfg.l3.sizeBytes / 1024 / 1024, cfg.freqGHz);
    std::printf("CPI       %.3f   (Deff %.2f limited by %s, MLP %.2f)\n",
                m.cpiPerUop(), m.deff, m.limits.binding(), m.mlp);
    double n = m.uops;
    std::printf("stack     base %.3f | branch %.3f | icache %.3f | "
                "LLC %.3f | DRAM %.3f\n",
                m.stack.base / n, m.stack.branch / n, m.stack.icache / n,
                m.stack.llcHit / n, m.stack.dram / n);
    std::printf("power     %.2f W (dynamic %.2f, static %.2f)\n",
                pw.total(), pw.dynamicPower(), pw.staticPower);
    std::printf("runtime   %.3f ms, energy %.3f mJ\n", em.seconds * 1e3,
                em.energy * 1e3);
    return 0;
}

int
cmdSweep(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    Profile p = loadProfile(argv[0]);

    examples::SweepFlags flags; // uops 0 = match the profiled length
    if (!flags.parse(argc - 1, argv + 1, "mipp_cli sweep <profile>"))
        return 2;
    SweepOptions sopts = flags.sopts;
    size_t uops = flags.uops;

    DesignSpace space =
        flags.full ? DesignSpace() : DesignSpace::small();
    std::vector<Profile> profiles{std::move(p)};
    std::vector<Trace> traces;
    if (sopts.mode != SweepMode::ModelOnly &&
        sopts.mode != SweepMode::ModelOnlyPareto) {
        // Simulation needs the instruction stream; regenerate the suite
        // workload the profile was collected from, at the profiled
        // length unless overridden (a length mismatch would skew the
        // model-vs-sim comparison through cold-miss fractions).
        if (uops == 0)
            uops = static_cast<size_t>(profiles[0].totalUops);
        traces.push_back(
            generateWorkload(suiteWorkload(profiles[0].name), uops));
    } else {
        traces.emplace_back();
    }

    SweepResult r = sweepEx(traces, profiles, space.configs(), {}, sopts);

    // Model-front modes (including streaming, which never materializes
    // the point grid) deliver the front directly; Paired computes it
    // here from the full grid.
    std::vector<SweepPoint> front =
        r.frontPoints.empty() ? std::vector<SweepPoint>{}
                              : r.frontPoints[0];
    if (front.empty() && !r.points.empty()) {
        std::vector<Objective> obj;
        for (size_t ci = 0; ci < r.nConfigs; ++ci)
            obj.push_back(
                {r.at(0, ci).modelCpi, r.at(0, ci).modelWatts});
        for (size_t ci : paretoFront(obj))
            front.push_back(r.at(0, ci));
    }
    std::printf("predicted Pareto frontier for %s (%zu of %zu designs, "
                "%zu simulations spent):\n",
                profiles[0].name.c_str(), front.size(), space.size(),
                r.simInvocations);
    for (const SweepPoint &pt : front) {
        std::printf("  %-30s CPI %7.3f  W %6.2f",
                    space[pt.configIdx].name.c_str(), pt.modelCpi,
                    pt.modelWatts);
        if (pt.simulated)
            std::printf("   (sim: %7.3f, err %+.1f%%)", pt.simCpi,
                        100 * pt.cpiError());
        std::printf("\n");
    }
    return 0;
}

int
cmdCalibrate(int argc, char **argv)
{
    CalibrationOptions copts;
    std::string gridName = "ci";
    std::string jsonPath;

    std::vector<char *> rest;
    for (int i = 0; i < argc; ++i) {
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", argv[i]);
                return nullptr;
            }
            return argv[++i];
        };
        const char *v = nullptr;
        if (!std::strcmp(argv[i], "--grid")) {
            if (!(v = next()))
                return 2;
            gridName = v;
        } else if (!std::strcmp(argv[i], "--json")) {
            if (!(v = next()))
                return 2;
            jsonPath = v;
        } else if (!std::strcmp(argv[i], "--no-phased")) {
            copts.includePhased = false;
        } else if (!std::strcmp(argv[i], "--no-branch-fit")) {
            copts.fitBranch = false;
        } else if (!std::strcmp(argv[i], "--workload")) {
            if (!(v = next()))
                return 2;
            copts.workloads.push_back(v);
        } else if (!std::strcmp(argv[i], "--trace")) {
            if (!(v = next()))
                return 2;
            copts.traceFiles.push_back(v);
        } else if (!std::strcmp(argv[i], "--check-grid")) {
            if (!(v = next()))
                return 2;
            copts.checkGrids.push_back(v);
        } else if (!std::strcmp(argv[i], "--rounds")) {
            if (!(v = next()))
                return 2;
            copts.rounds = std::atoi(v);
            if (copts.rounds <= 0) {
                // atoi's silent 0 on a typo would skip the whole
                // coefficient fit yet still print "fitted" values.
                std::fprintf(stderr,
                             "--rounds requires a positive integer "
                             "(got '%s')\n", v);
                return 2;
            }
        } else {
            rest.push_back(argv[i]);
        }
    }
    examples::SweepFlags flags;
    flags.uops = copts.uops;
    if (!flags.parse(static_cast<int>(rest.size()), rest.data(),
                     "mipp_cli report calibrate"))
        return 2;
    copts.uops = flags.uops;
    copts.threads = flags.sopts.threads;
    copts.grid = accuracyGrid(gridName);

    CalibrationReport rep = runCalibration(copts);

    std::printf("calibration: %zu workloads x %zu design points "
                "(%zu uops, grid '%s')\n",
                rep.workloadNames.size(), rep.gridNames.size(), rep.uops,
                gridName.c_str());
    if (!rep.branchFits.empty()) {
        std::printf("piecewise entropy fits "
                    "(missRate = a*E + b + a2*max(0, E - knee)):\n");
        for (size_t i = 0; i < rep.branchFits.size(); ++i) {
            const BranchMissModel &m = rep.branchFits[i];
            std::printf("  %-10s a %.4f  b %+.4f  knee %.4f  "
                        "a2 %.4f  (r2 %.3f)\n",
                        std::string(branchPredictorName(m.kind)).c_str(),
                        m.slope, m.intercept, m.knee, m.kneeSlope,
                        i < rep.branchR2.size() ? rep.branchR2[i] : 0.0);
        }
    }
    std::printf("fitted coefficients (ModelCalibration::fitted()):\n"
                "  penaltyScale %.4f  baseWindowFrac %.4f  "
                "mlpWindowFrac %.4f\n"
                "  shadowScale %.4f  busQueueScale %.4f  "
                "coldInject %.4f\n",
                rep.cal.penaltyScale, rep.cal.baseWindowFrac,
                rep.cal.mlpWindowFrac, rep.cal.shadowScale,
                rep.cal.busQueueScale, rep.cal.coldInject);
    std::printf("%-8s %18s %18s\n", "metric", "before MAPE (bias)",
                "after MAPE (bias)");
    for (size_t k = 0; k < kNumAccuracyMetrics; ++k) {
        auto m = static_cast<AccuracyMetric>(k);
        std::printf("%-8s %10.2f (%+6.2f) %10.2f (%+6.2f)\n",
                    std::string(accuracyMetricName(m)).c_str(),
                    rep.beforeOf(m).mape, rep.beforeOf(m).meanSigned,
                    rep.afterOf(m).mape, rep.afterOf(m).meanSigned);
    }
    std::printf("worst signed CPI error: before %.1f%%, after %.1f%%\n",
                rep.beforeOf(AccuracyMetric::Cpi).minSigned,
                rep.afterOf(AccuracyMetric::Cpi).minSigned);
    for (const CalibrationReport::GridCheck &gc : rep.gridChecks) {
        std::printf("cross-check on grid '%s' (fitted coefficients, "
                    "no refit):\n", gc.grid.c_str());
        for (size_t k = 0; k < kNumAccuracyMetrics; ++k) {
            auto m = static_cast<AccuracyMetric>(k);
            const MetricSummary &s = gc.summary[k];
            std::printf("  %-8s %10.2f (%+6.2f)\n",
                        std::string(accuracyMetricName(m)).c_str(),
                        s.mape, s.meanSigned);
        }
    }

    if (!jsonPath.empty()) {
        if (!writeCalibrationJson(rep, jsonPath)) {
            std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
            return 1;
        }
        std::printf("report written to %s\n", jsonPath.c_str());
    }
    return 0;
}

int
cmdReportMetrics(int argc, char **argv)
{
    std::string socketPath, outPath;
    std::string format = "json";
    for (int i = 0; i < argc; ++i) {
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", argv[i]);
                return nullptr;
            }
            return argv[++i];
        };
        const char *v = nullptr;
        if (!std::strcmp(argv[i], "--socket")) {
            if (!(v = next()))
                return 2;
            socketPath = v;
        } else if (!std::strcmp(argv[i], "--out")) {
            if (!(v = next()))
                return 2;
            outPath = v;
        } else if (!std::strcmp(argv[i], "--prometheus")) {
            format = "prometheus";
        } else {
            std::fprintf(stderr, "unknown report metrics flag %s\n",
                         argv[i]);
            return 2;
        }
    }
    if (socketPath.empty()) {
        std::fprintf(stderr,
                     "usage: mipp_cli report metrics --socket PATH "
                     "[--prometheus] [--out FILE]\n");
        return 2;
    }

    serve::Client cli;
    throwIfError(cli.connect(socketPath));
    std::string resp;
    throwIfError(cli.call(
        "{\"op\":\"metrics\",\"format\":\"" + format + "\"}", resp));
    json::Value doc;
    throwIfError(json::parse(resp, doc, {}));
    if (!doc.boolOr("ok", false)) {
        std::fprintf(stderr, "server error: %s\n",
                     doc.stringOr("error", "malformed response").c_str());
        return 1;
    }
    // JSON output is the response line itself (already a complete
    // document); Prometheus text arrives JSON-escaped and is unwrapped.
    std::string text =
        format == "prometheus" ? doc.stringOr("prometheus", "") : resp;
    if (!outPath.empty()) {
        std::ofstream os(outPath);
        os << text << '\n';
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
            return 1;
        }
        std::printf("metrics written to %s\n", outPath.c_str());
    } else {
        std::printf("%s\n", text.c_str());
    }
    return 0;
}

int
cmdReport(int argc, char **argv)
{
    if (argc >= 1 && !std::strcmp(argv[0], "calibrate"))
        return cmdCalibrate(argc - 1, argv + 1);
    if (argc >= 1 && !std::strcmp(argv[0], "metrics"))
        return cmdReportMetrics(argc - 1, argv + 1);
    if (argc < 1 || std::strcmp(argv[0], "accuracy") != 0) {
        std::fprintf(stderr,
                     "usage: mipp_cli report accuracy [--grid "
                     "ci|default|wide] [--uops N] [--threads N] [--full] "
                     "[--no-phased] [--workload NAME]... [--json FILE] "
                     "[--baseline FILE] [--margin PCT]\n"
                     "       mipp_cli report calibrate [--grid "
                     "ci|default|wide] [--uops N] [--threads N] "
                     "[--no-phased] [--no-branch-fit] [--rounds N] "
                     "[--workload NAME]... [--json FILE]\n"
                     "       mipp_cli report metrics --socket PATH "
                     "[--prometheus] [--out FILE]\n");
        return 2;
    }

    AccuracyOptions aopts;
    std::string gridName = "default";
    bool gridExplicit = false;
    std::string jsonPath, baselinePath;
    double margin = 2.0;

    // Accuracy-specific flags are consumed here; everything else is
    // handed to the shared SweepFlags parser (--uops/--threads/--full).
    std::vector<char *> rest;
    for (int i = 1; i < argc; ++i) {
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", argv[i]);
                return nullptr;
            }
            return argv[++i];
        };
        const char *v = nullptr;
        if (!std::strcmp(argv[i], "--grid")) {
            if (!(v = next()))
                return 2;
            gridName = v;
            gridExplicit = true;
        } else if (!std::strcmp(argv[i], "--json")) {
            if (!(v = next()))
                return 2;
            jsonPath = v;
        } else if (!std::strcmp(argv[i], "--baseline")) {
            if (!(v = next()))
                return 2;
            baselinePath = v;
        } else if (!std::strcmp(argv[i], "--margin")) {
            if (!(v = next()))
                return 2;
            margin = std::atof(v);
        } else if (!std::strcmp(argv[i], "--no-phased")) {
            aopts.includePhased = false;
        } else if (!std::strcmp(argv[i], "--workload")) {
            if (!(v = next()))
                return 2;
            aopts.workloads.push_back(v);
        } else if (!std::strcmp(argv[i], "--trace")) {
            if (!(v = next()))
                return 2;
            aopts.traceFiles.push_back(v);
        } else {
            rest.push_back(argv[i]);
        }
    }
    examples::SweepFlags flags;
    flags.uops = aopts.uops;
    if (!flags.parse(static_cast<int>(rest.size()), rest.data(),
                     "mipp_cli report accuracy"))
        return 2;
    aopts.uops = flags.uops;
    aopts.threads = flags.sopts.threads;
    if (flags.full) {
        if (gridExplicit && gridName != "wide") {
            std::fprintf(stderr,
                         "--full conflicts with --grid %s (it selects "
                         "the wide grid)\n",
                         gridName.c_str());
            return 2;
        }
        gridName = "wide";
    }
    aopts.grid = accuracyGrid(gridName);

    AccuracyReport rep = runAccuracy(aopts);

    std::printf("accuracy: %zu workloads x %zu design points "
                "(%zu uops, grid '%s')\n",
                rep.workloadNames.size(), rep.gridNames.size(), rep.uops,
                gridName.c_str());
    std::printf("%-18s %8s %8s %7s   %s\n", "workload", "simCPI",
                "modelCPI", "err%", "mean|err|% across grid");
    const size_t nc = rep.gridNames.size();
    for (size_t wi = 0; wi < rep.workloadNames.size(); ++wi) {
        const PointAccuracy &ref = rep.points[wi * nc];
        double meanAbs = 0;
        for (size_t ci = 0; ci < nc; ++ci)
            meanAbs += std::abs(
                rep.points[wi * nc + ci]
                    .err[static_cast<size_t>(AccuracyMetric::Cpi)]);
        meanAbs /= nc ? nc : 1;
        std::printf("%-18s %8.3f %8.3f %+6.1f%%   %6.1f%%\n",
                    ref.workload.c_str(), ref.simCpi, ref.modelCpi,
                    ref.err[static_cast<size_t>(AccuracyMetric::Cpi)],
                    meanAbs);
    }
    std::printf("suite MAPE (signed bias):");
    for (size_t k = 0; k < kNumAccuracyMetrics; ++k) {
        auto m = static_cast<AccuracyMetric>(k);
        std::printf(" %s %.1f (%+.1f)%s",
                    std::string(accuracyMetricName(m)).c_str(),
                    rep.of(m).mape, rep.of(m).meanSigned,
                    k + 1 < kNumAccuracyMetrics ? " |" : "\n");
    }

    if (!jsonPath.empty()) {
        if (!writeAccuracyJson(rep, jsonPath)) {
            std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
            return 1;
        }
        std::printf("report written to %s\n", jsonPath.c_str());
    }

    int rc = 0;
    if (!rep.consistent()) {
        std::fprintf(stderr,
                     "%zu internal-consistency violations:\n",
                     rep.violations.size());
        for (const auto &v : rep.violations)
            std::fprintf(stderr, "  %s\n", v.c_str());
        rc = 1;
    }
    if (!baselinePath.empty()) {
        auto regressions = compareToBaseline(rep, baselinePath, margin);
        if (!regressions.empty()) {
            std::fprintf(stderr, "MAPE regressions vs %s:\n",
                         baselinePath.c_str());
            for (const auto &r : regressions)
                std::fprintf(stderr, "  %s\n", r.c_str());
            rc = 1;
        } else {
            std::printf("baseline gate passed (%s, margin %.1f)\n",
                        baselinePath.c_str(), margin);
        }
    }
    return rc;
}

std::atomic<bool> gServeStop{false};

void
onServeSignal(int)
{
    gServeStop.store(true);
}

int
cmdServe(int argc, char **argv)
{
    serve::ServerOptions sopts;
    for (int i = 0; i < argc; ++i) {
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", argv[i]);
                return nullptr;
            }
            return argv[++i];
        };
        const char *v = nullptr;
        if (!std::strcmp(argv[i], "--socket")) {
            if (!(v = next()))
                return 2;
            sopts.socketPath = v;
        } else if (!std::strcmp(argv[i], "--workers")) {
            if (!(v = next()))
                return 2;
            sopts.workers = static_cast<unsigned>(std::atoi(v));
        } else if (!std::strcmp(argv[i], "--queue")) {
            if (!(v = next()))
                return 2;
            sopts.maxQueue = std::strtoull(v, nullptr, 10);
        } else if (!std::strcmp(argv[i], "--profiles")) {
            if (!(v = next()))
                return 2;
            sopts.maxProfiles = std::strtoull(v, nullptr, 10);
        } else if (!std::strcmp(argv[i], "--deadline-ms")) {
            if (!(v = next()))
                return 2;
            sopts.defaultDeadlineMs = std::atof(v);
        } else if (!std::strcmp(argv[i], "--failpoints")) {
            sopts.allowFailpoints = true;
        } else if (!std::strcmp(argv[i], "--stats-interval-ms")) {
            if (!(v = next()))
                return 2;
            sopts.statsIntervalMs = std::atof(v);
        } else {
            std::fprintf(stderr, "unknown serve flag %s\n", argv[i]);
            return 2;
        }
    }
    if (sopts.socketPath.empty()) {
        std::fprintf(stderr,
                     "usage: mipp_cli serve --socket PATH [--workers N] "
                     "[--queue N] [--profiles N] [--deadline-ms D] "
                     "[--failpoints] [--stats-interval-ms D]\n");
        return 2;
    }

    serve::Server server(sopts);
    throwIfError(server.start());
    std::printf("serving on %s (%u workers, queue %zu, LRU %zu%s)\n",
                sopts.socketPath.c_str(), sopts.workers, sopts.maxQueue,
                sopts.maxProfiles,
                sopts.allowFailpoints ? ", failpoints ENABLED" : "");
    std::fflush(stdout);

    std::signal(SIGINT, onServeSignal);
    std::signal(SIGTERM, onServeSignal);
    while (!gServeStop.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::printf("shutting down\n");
    server.stop();
    serve::ServerStats st = server.stats();
    std::printf("served %llu requests (%llu shed, %llu errors, "
                "%llu degraded)\n",
                static_cast<unsigned long long>(st.served),
                static_cast<unsigned long long>(st.shed),
                static_cast<unsigned long long>(st.errors),
                static_cast<unsigned long long>(st.degraded));
    return 0;
}

int
runCommand(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    if (cmd == "help" || cmd == "--help" || cmd == "-h")
        return cmdHelp(argc - 2, argv + 2);
    if (wantsHelp(argc - 2, argv + 2)) {
        // `mipp_cli <cmd> [sub] --help` → the same text as `help <cmd>`.
        return cmdHelp(argc - 1, argv + 1);
    }
    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "profile")
            return cmdProfile(argc - 2, argv + 2);
        if (cmd == "evaluate")
            return cmdEvaluate(argc - 2, argv + 2);
        if (cmd == "sweep")
            return cmdSweep(argc - 2, argv + 2);
        if (cmd == "trace")
            return cmdTrace(argc - 2, argv + 2);
        if (cmd == "report")
            return cmdReport(argc - 2, argv + 2);
        if (cmd == "serve")
            return cmdServe(argc - 2, argv + 2);
    } catch (const StatusError &e) {
        // Structured, input-shaped failure: print the code and use a
        // distinct exit status so scripts can tell "your input" (2)
        // from "our bug" (1).
        std::fprintf(stderr, "error [%.*s]: %s\n",
                     static_cast<int>(statusCodeName(e.code()).size()),
                     statusCodeName(e.code()).data(),
                     e.status().message().c_str());
        return e.code() == StatusCode::Internal ? 1 : 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}

} // namespace

int
main(int argc, char **argv)
{
    // `--trace-json FILE` is global: strip it before command dispatch,
    // record the whole run, flush on exit (any command, any exit path
    // short of a crash — including serve's SIGINT shutdown).
    std::string traceJsonPath;
    std::vector<char *> args(argv, argv + argc);
    for (size_t i = 1; i < args.size();) {
        if (!std::strcmp(args[i], "--trace-json")) {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "--trace-json requires a file\n");
                return 2;
            }
            traceJsonPath = args[i + 1];
            args.erase(args.begin() + static_cast<long>(i),
                       args.begin() + static_cast<long>(i) + 2);
        } else {
            ++i;
        }
    }

    std::unique_ptr<obs::SpanRecorder> recorder;
    if (!traceJsonPath.empty()) {
        recorder = std::make_unique<obs::SpanRecorder>();
        recorder->install();
    }

    int rc = runCommand(static_cast<int>(args.size()), args.data());

    if (recorder) {
        obs::SpanRecorder::uninstall();
        std::ofstream os(traceJsonPath);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n",
                         traceJsonPath.c_str());
            return rc ? rc : 1;
        }
        recorder->writeChromeTrace(os);
        std::fprintf(stderr,
                     "trace written to %s (%zu spans, %llu dropped)\n",
                     traceJsonPath.c_str(), recorder->snapshot().size(),
                     static_cast<unsigned long long>(
                         recorder->dropped()));
    }
    return rc;
}
