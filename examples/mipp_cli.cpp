/**
 * @file
 * mipp_cli — command-line front end mirroring the paper's released
 * AIP (profiler) + PMT (modeling tool) pair:
 *
 *   mipp_cli profile <workload> <out.profile> [uops]
 *       Generate the named suite workload and profile it once.
 *
 *   mipp_cli evaluate <in.profile> [--width N] [--rob N] [--l1d KB]
 *                     [--l2 KB] [--l3 MB] [--freq GHZ] [--prefetcher]
 *       Evaluate the analytical model for one design point.
 *
 *   mipp_cli sweep <in.profile> [--mode model|pareto|paired]
 *                  [--threads N] [--validate N] [--full] [--uops N]
 *       Sweep the design space and print the Pareto frontier.
 *       `model` (default) evaluates the analytical model only;
 *       `pareto` additionally simulates the model-predicted front plus a
 *       validation sample (the paper's prune-then-validate workflow);
 *       `paired` simulates every point. Simulation modes regenerate the
 *       suite workload named in the profile. `--full` uses the 243-point
 *       space instead of the 27-point subspace.
 *
 *   mipp_cli list
 *       List the available suite workloads.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dse/explorer.hh"
#include "dse/pareto.hh"
#include "model/interval_model.hh"
#include "power/power_model.hh"
#include "profiler/profile_io.hh"
#include "profiler/profiler.hh"
#include "sweep_flags.hh"
#include "uarch/design_space.hh"
#include "workloads/workload.hh"

namespace {

using namespace mipp;

int
usage()
{
    std::fprintf(stderr,
                 "usage: mipp_cli profile <workload> <out> [uops]\n"
                 "       mipp_cli evaluate <profile> [options]\n"
                 "       mipp_cli sweep <profile>\n"
                 "       mipp_cli list\n");
    return 2;
}

int
cmdList()
{
    for (const auto &s : workloadSuite())
        std::printf("%s\n", s.name.c_str());
    return 0;
}

int
cmdProfile(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    size_t uops = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;
    WorkloadSpec spec = suiteWorkload(argv[0]);
    Trace t = generateWorkload(spec, uops);
    Profile p = profileTrace(t, {.name = spec.name});
    if (!saveProfile(p, argv[1])) {
        std::fprintf(stderr, "cannot write %s\n", argv[1]);
        return 1;
    }
    std::printf("profiled %s (%zu uops) -> %s\n", spec.name.c_str(),
                t.size(), argv[1]);
    return 0;
}

CoreConfig
parseConfig(int argc, char **argv)
{
    CoreConfig cfg = CoreConfig::nehalemReference();
    for (int i = 0; i < argc; ++i) {
        auto next = [&]() -> double {
            return i + 1 < argc ? std::atof(argv[++i]) : 0;
        };
        if (!std::strcmp(argv[i], "--width"))
            cfg.setWidth(static_cast<uint32_t>(next()));
        else if (!std::strcmp(argv[i], "--rob"))
            scaleBackEnd(cfg, static_cast<uint32_t>(next()));
        else if (!std::strcmp(argv[i], "--l1d"))
            cfg.l1d.sizeBytes = static_cast<uint32_t>(next()) * 1024;
        else if (!std::strcmp(argv[i], "--l2"))
            cfg.l2.sizeBytes = static_cast<uint32_t>(next()) * 1024;
        else if (!std::strcmp(argv[i], "--l3"))
            cfg.l3.sizeBytes =
                static_cast<uint32_t>(next()) * 1024 * 1024;
        else if (!std::strcmp(argv[i], "--freq"))
            cfg.freqGHz = next();
        else if (!std::strcmp(argv[i], "--prefetcher"))
            cfg.prefetcherEnabled = true;
    }
    return cfg;
}

int
cmdEvaluate(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    Profile p = loadProfile(argv[0]);
    CoreConfig cfg = parseConfig(argc - 1, argv + 1);

    ModelResult m = evaluateModel(p, cfg);
    PowerBreakdown pw = computePower(m.activity, cfg);
    EnergyMetrics em = energyMetrics(m.cycles, pw, cfg);

    std::printf("profile   %s (%lu uops)\n", p.name.c_str(),
                static_cast<unsigned long>(p.totalUops));
    std::printf("design    width %u, ROB %u, L1D %u KB, L2 %u KB, "
                "L3 %u MB, %.2f GHz\n",
                cfg.dispatchWidth, cfg.robSize,
                cfg.l1d.sizeBytes / 1024, cfg.l2.sizeBytes / 1024,
                cfg.l3.sizeBytes / 1024 / 1024, cfg.freqGHz);
    std::printf("CPI       %.3f   (Deff %.2f limited by %s, MLP %.2f)\n",
                m.cpiPerUop(), m.deff, m.limits.binding(), m.mlp);
    double n = m.uops;
    std::printf("stack     base %.3f | branch %.3f | icache %.3f | "
                "LLC %.3f | DRAM %.3f\n",
                m.stack.base / n, m.stack.branch / n, m.stack.icache / n,
                m.stack.llcHit / n, m.stack.dram / n);
    std::printf("power     %.2f W (dynamic %.2f, static %.2f)\n",
                pw.total(), pw.dynamicPower(), pw.staticPower);
    std::printf("runtime   %.3f ms, energy %.3f mJ\n", em.seconds * 1e3,
                em.energy * 1e3);
    return 0;
}

int
cmdSweep(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    Profile p = loadProfile(argv[0]);

    examples::SweepFlags flags; // uops 0 = match the profiled length
    if (!flags.parse(argc - 1, argv + 1, "mipp_cli sweep <profile>"))
        return 2;
    SweepOptions sopts = flags.sopts;
    size_t uops = flags.uops;

    DesignSpace space =
        flags.full ? DesignSpace() : DesignSpace::small();
    std::vector<Profile> profiles{std::move(p)};
    std::vector<Trace> traces;
    if (sopts.mode != SweepMode::ModelOnly) {
        // Simulation needs the instruction stream; regenerate the suite
        // workload the profile was collected from, at the profiled
        // length unless overridden (a length mismatch would skew the
        // model-vs-sim comparison through cold-miss fractions).
        if (uops == 0)
            uops = static_cast<size_t>(profiles[0].totalUops);
        traces.push_back(
            generateWorkload(suiteWorkload(profiles[0].name), uops));
    } else {
        traces.emplace_back();
    }

    SweepResult r = sweepEx(traces, profiles, space.configs(), {}, sopts);

    std::vector<size_t> front =
        r.modelFronts.empty() ? std::vector<size_t>{} : r.modelFronts[0];
    if (front.empty()) {
        std::vector<Objective> obj;
        for (size_t ci = 0; ci < r.nConfigs; ++ci)
            obj.push_back(
                {r.at(0, ci).modelCpi, r.at(0, ci).modelWatts});
        front = paretoFront(obj);
    }
    std::printf("predicted Pareto frontier for %s (%zu of %zu designs, "
                "%zu simulations spent):\n",
                profiles[0].name.c_str(), front.size(), space.size(),
                r.simInvocations);
    for (size_t ci : front) {
        const SweepPoint &pt = r.at(0, ci);
        std::printf("  %-30s CPI %7.3f  W %6.2f", space[ci].name.c_str(),
                    pt.modelCpi, pt.modelWatts);
        if (pt.simulated)
            std::printf("   (sim: %7.3f, err %+.1f%%)", pt.simCpi,
                        100 * pt.cpiError());
        std::printf("\n");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "profile")
            return cmdProfile(argc - 2, argv + 2);
        if (cmd == "evaluate")
            return cmdEvaluate(argc - 2, argv + 2);
        if (cmd == "sweep")
            return cmdSweep(argc - 2, argv + 2);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}
