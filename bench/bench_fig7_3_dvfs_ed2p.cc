/**
 * Regenerates thesis Table 7.2 / Fig 7.3: ED2P across the DVFS ladder,
 * computed by the simulator and the model; both should identify the same
 * (or a neighbouring) optimal operating point.
 */
#include "bench_util.hh"
#include "dse/explorer.hh"
#include "uarch/design_space.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 7.3", "ED2P over DVFS settings, sim vs model");
    auto b = makeBundle({suiteWorkload("mix_mid"),
                         suiteWorkload("dense_compute"),
                         suiteWorkload("stream_add")},
                        120000);

    for (size_t wi = 0; wi < b.size(); ++wi) {
        std::printf("\n%s\n", b.specs[wi].name.c_str());
        std::printf("%8s %6s | %12s %12s\n", "GHz", "Vdd", "sim ED2P",
                    "model ED2P");
        double bestSim = 1e300, bestMod = 1e300;
        double bestSimF = 0, bestModF = 0;
        for (const auto &pt : dvfsLadder()) {
            CoreConfig cfg = CoreConfig::nehalemReference();
            cfg.freqGHz = pt.freqGHz;
            cfg.vdd = pt.vdd;
            // Memory latency in cycles scales with frequency (DRAM time
            // is constant in nanoseconds).
            cfg.memLatency = static_cast<uint32_t>(
                200.0 * pt.freqGHz / 2.66);
            auto e = evaluatePair(b.traces[wi], b.profiles[wi], cfg);
            auto simM = energyMetrics(
                static_cast<double>(e.sim.cycles), e.simPower, cfg);
            auto modM = energyMetrics(e.model.cycles, e.modelPower, cfg);
            std::printf("%8.2f %6.2f | %12.4e %12.4e\n", pt.freqGHz,
                        pt.vdd, simM.ed2p, modM.ed2p);
            if (simM.ed2p < bestSim) {
                bestSim = simM.ed2p;
                bestSimF = pt.freqGHz;
            }
            if (modM.ed2p < bestMod) {
                bestMod = modM.ed2p;
                bestModF = pt.freqGHz;
            }
        }
        std::printf("optimal ED2P point: sim %.2f GHz, model %.2f GHz\n",
                    bestSimF, bestModF);
    }
    return 0;
}
