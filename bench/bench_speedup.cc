/**
 * Regenerates the thesis §6.2 speed claim with google-benchmark: the
 * per-design-point cost of detailed simulation vs profiling (one-time)
 * vs evaluating the analytical model. The paper reports 315x vs
 * simulation and 18x vs the simulation-driven interval model for a
 * 243-config x 29-benchmark space.
 */
#include <benchmark/benchmark.h>

#include "model/interval_model.hh"
#include "profiler/profiler.hh"
#include "sim/ooo_core.hh"
#include "workloads/workload.hh"

namespace {

using namespace mipp;

const Trace &
sharedTrace()
{
    static Trace t =
        generateWorkload(suiteWorkload("balanced_mix"), 200000);
    return t;
}

const Profile &
sharedProfile()
{
    static Profile p = profileTrace(sharedTrace(), {});
    return p;
}

void
BM_DetailedSimulation(benchmark::State &state)
{
    CoreConfig cfg = CoreConfig::nehalemReference();
    for (auto _ : state) {
        auto res = simulate(sharedTrace(), cfg);
        benchmark::DoNotOptimize(res.cycles);
    }
    state.SetItemsProcessed(state.iterations() * sharedTrace().size());
}
BENCHMARK(BM_DetailedSimulation)->Unit(benchmark::kMillisecond);

void
BM_ProfileOnce(benchmark::State &state)
{
    for (auto _ : state) {
        Profile p = profileTrace(sharedTrace(), {});
        benchmark::DoNotOptimize(p.profiledUops);
    }
    state.SetItemsProcessed(state.iterations() * sharedTrace().size());
}
BENCHMARK(BM_ProfileOnce)->Unit(benchmark::kMillisecond);

void
BM_ProfileBatch(benchmark::State &state)
{
    // Multi-workload profiling through the batch API (shared thread
    // pool; falls back to sequential on single-core hosts).
    static std::vector<Trace> traces = [] {
        std::vector<Trace> t;
        for (const char *name : {"balanced_mix", "stream_add",
                                 "ptr_chase", "branchy"})
            t.push_back(generateWorkload(suiteWorkload(name), 50000));
        return t;
    }();
    size_t uops = 0;
    for (const auto &t : traces)
        uops += t.size();
    for (auto _ : state) {
        auto profiles = profileTraces(traces);
        benchmark::DoNotOptimize(profiles.size());
    }
    state.SetItemsProcessed(state.iterations() * uops);
}
BENCHMARK(BM_ProfileBatch)->Unit(benchmark::kMillisecond);

void
BM_ModelEvaluation(benchmark::State &state)
{
    CoreConfig cfg = CoreConfig::nehalemReference();
    for (auto _ : state) {
        auto res = evaluateModel(sharedProfile(), cfg);
        benchmark::DoNotOptimize(res.cycles);
    }
}
BENCHMARK(BM_ModelEvaluation)->Unit(benchmark::kMillisecond);

void
BM_ModelEvaluationGlobal(benchmark::State &state)
{
    CoreConfig cfg = CoreConfig::nehalemReference();
    ModelOptions o;
    o.perWindow = false;
    for (auto _ : state) {
        auto res = evaluateModel(sharedProfile(), cfg, o);
        benchmark::DoNotOptimize(res.cycles);
    }
}
BENCHMARK(BM_ModelEvaluationGlobal)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
