/**
 * Regenerates thesis Fig 7.10-7.13: the mechanistic model versus an
 * empirical (regression) model for design-space pruning. The empirical
 * model is trained on a random subset of simulated points and evaluated
 * on the rest; the thesis finds it accurate on average but worse at
 * ranking (lower Pareto quality).
 */
#include "bench_util.hh"
#include "dse/empirical.hh"
#include "dse/explorer.hh"
#include "dse/pareto.hh"
#include "trace/rng.hh"
#include "uarch/design_space.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 7.10-7.13", "mechanistic vs empirical model");
    auto b = makeBundle({suiteWorkload("stream_add"),
                         suiteWorkload("dense_compute"),
                         suiteWorkload("matrix_tile"),
                         suiteWorkload("mix_mid")},
                        120000);
    DesignSpace space = DesignSpace::small();
    auto points = sweep(b.traces, b.profiles, space.configs());

    // Train the empirical model on half the simulated points.
    Rng rng(2026);
    EmpiricalModel emp;
    std::vector<bool> isTraining(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
        isTraining[i] = rng.chance(0.5);
        if (isTraining[i]) {
            const auto &pt = points[i];
            emp.addSample(space[pt.configIdx], b.profiles[pt.workloadIdx],
                          pt.simCpi, pt.simWatts);
        }
    }
    if (!emp.train()) {
        std::printf("empirical model under-determined\n");
        return 1;
    }

    // Held-out accuracy of both models.
    std::vector<double> mechErr, empErr;
    for (size_t i = 0; i < points.size(); ++i) {
        if (isTraining[i])
            continue;
        const auto &pt = points[i];
        double e = emp.predictCpi(space[pt.configIdx],
                                  b.profiles[pt.workloadIdx]);
        mechErr.push_back(100 * pt.cpiError());
        empErr.push_back(pctErr(e, pt.simCpi));
    }
    std::printf("held-out CPI avg |err|: mechanistic %.1f%%, empirical "
                "%.1f%%\n\n", meanAbs(mechErr), meanAbs(empErr));

    // Pareto quality per workload for both models.
    std::printf("%-16s | %25s | %25s\n", "", "mechanistic",
                "empirical");
    std::printf("%-16s | %7s %7s %8s | %7s %7s %8s\n", "benchmark",
                "sens", "spec", "HVR", "sens", "spec", "HVR");
    double mh = 0, eh = 0;
    for (size_t wi = 0; wi < b.size(); ++wi) {
        std::vector<Objective> trueObj, mechObj, empObj;
        for (const auto &pt : points) {
            if (pt.workloadIdx != wi)
                continue;
            trueObj.push_back({pt.simCpi, pt.simWatts});
            mechObj.push_back({pt.modelCpi, pt.modelWatts});
            const CoreConfig &cfg = space[pt.configIdx];
            empObj.push_back(
                {emp.predictCpi(cfg, b.profiles[wi]),
                 emp.predictPower(cfg, b.profiles[wi])});
        }
        auto mm = compareFronts(trueObj, mechObj);
        auto em = compareFronts(trueObj, empObj);
        std::printf("%-16s | %6.1f%% %6.1f%% %7.1f%% | %6.1f%% %6.1f%% "
                    "%7.1f%%\n",
                    b.specs[wi].name.c_str(), 100 * mm.sensitivity,
                    100 * mm.specificity, 100 * mm.hvr,
                    100 * em.sensitivity, 100 * em.specificity,
                    100 * em.hvr);
        mh += mm.hvr;
        eh += em.hvr;
    }
    std::printf("\navg HVR: mechanistic %.1f%%, empirical %.1f%%  "
                "(paper: mechanistic ranks better)\n",
                100 * mh / b.size(), 100 * eh / b.size());
    return 0;
}
