/**
 * Benchmarks for the DSE-as-a-service daemon (google-benchmark;
 * recorded alongside the sweep benchmarks by bench/run_benchmarks.sh).
 *
 * BM_ServeThroughput measures end-to-end request throughput against a
 * warm server: N concurrent clients (benchmark threads), each with its
 * own connection, issuing model-only 27-point sweeps against a profile
 * already resident in the server's LRU. The measured path is the full
 * service stack — socket round-trip, JSON parse, queue, executor,
 * batched sweep against the entry's persistent ModelEvalPool, response
 * serialization — so the number is comparable to BM_DseSweepBatched to
 * read off the serving overhead on top of the bare sweep.
 *
 * BM_ServeEvaluate is the cheapest query (single-config evaluation
 * against the warm EvalContext), bounding the per-request fixed cost.
 *
 * Both are smoke-safe: small profile, small space, server torn down at
 * process exit.
 */
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <sstream>
#include <string>

#include "profiler/profile_io.hh"
#include "profiler/profiler.hh"
#include "serve/server.hh"
#include "util/json.hh"
#include "workloads/workload.hh"

namespace {

using namespace mipp;

/** Start the daemon once, upload one profile, return the socket path.
 *  The static Server stops itself (joining all threads) at exit. */
const std::string &
warmServerSocket()
{
    static const std::string path = [] {
        std::ostringstream os;
        os << "/tmp/mipp_bench_serve_" << ::getpid() << ".sock";
        return os.str();
    }();
    static serve::Server server([] {
        serve::ServerOptions opts;
        opts.socketPath = path;
        opts.workers = 2;
        opts.maxQueue = 64;
        return opts;
    }());
    static const bool ready = [] {
        Status st = server.start();
        if (!st.ok()) {
            std::fprintf(stderr, "bench_serve: %s\n",
                         st.toString().c_str());
            std::abort();
        }
        Trace t = generateWorkload(suiteWorkload("balanced_mix"), 50000);
        Profile p = profileTrace(t, {.name = "balanced_mix"});
        std::stringstream ss;
        writeProfile(p, ss);
        std::string req = "{\"op\":\"load-profile\",\"name\":\"w\","
                          "\"data\":" +
                          json::quote(ss.str()) + "}";
        serve::Client cli;
        std::string resp;
        if (!cli.connect(path).ok() || !cli.call(req, resp).ok() ||
            resp.find("\"ok\":true") == std::string::npos) {
            std::fprintf(stderr, "bench_serve: profile upload failed\n");
            std::abort();
        }
        return true;
    }();
    (void)ready;
    return path;
}

void
BM_ServeThroughput(benchmark::State &state)
{
    // One connection per benchmark thread; the sweep hits the warm LRU
    // entry (memoized EvalContext + persistent ModelEvalPool), so the
    // steady state is serving overhead + batched model evaluation.
    serve::Client cli;
    if (!cli.connect(warmServerSocket()).ok()) {
        state.SkipWithError("connect failed");
        return;
    }
    const std::string req =
        "{\"op\":\"sweep\",\"profile\":\"w\",\"space\":\"small\"}";
    for (auto _ : state) {
        std::string resp;
        Status st = cli.call(req, resp);
        if (!st.ok() || resp.find("\"ok\":true") == std::string::npos) {
            state.SkipWithError("sweep request failed");
            return;
        }
    }
    // 27 design points per request (the "small" 3x3x3 space).
    state.SetItemsProcessed(state.iterations() * 27);
}
BENCHMARK(BM_ServeThroughput)
    ->Unit(benchmark::kMillisecond)
    ->Threads(1)
    ->Threads(4);

void
BM_ServeEvaluate(benchmark::State &state)
{
    serve::Client cli;
    if (!cli.connect(warmServerSocket()).ok()) {
        state.SkipWithError("connect failed");
        return;
    }
    const std::string req = "{\"op\":\"evaluate\",\"profile\":\"w\","
                            "\"config\":{\"width\":4,\"rob\":128}}";
    for (auto _ : state) {
        std::string resp;
        Status st = cli.call(req, resp);
        if (!st.ok() || resp.find("\"ok\":true") == std::string::npos) {
            state.SkipWithError("evaluate request failed");
            return;
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeEvaluate)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
