/**
 * Regenerates thesis Fig 4.4: breakdown of cold vs capacity LLC misses
 * for a short trace and for a doubled trace with the first half as
 * warm-up.
 */
#include "bench_util.hh"
#include "sim/ooo_core.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 4.4", "cold vs capacity LLC miss breakdown (load/store)");
    CoreConfig cfg = CoreConfig::nehalemReference();
    std::printf("%-16s | %22s | %22s\n", "", "150k uops",
                "300k uops (150k warm)");
    std::printf("%-16s | %10s %11s | %10s %11s\n", "benchmark",
                "cold frac", "misses", "cold frac", "misses");
    for (const auto &spec : workloadSuite()) {
        Trace shortT = generateWorkload(spec, 150000);
        Trace longT = generateWorkload(spec, 300000);
        auto sShort = simulate(shortT, cfg).mem;
        auto sLong = simulate(longT, cfg).mem;

        auto coldFrac = [](const MemoryStats &m) {
            uint64_t cold = m.coldLoadMisses + m.coldStoreMisses;
            uint64_t total = cold + m.capacityLoadMisses +
                             m.capacityStoreMisses;
            return total ? static_cast<double>(cold) / total : 0.0;
        };
        uint64_t mShort = sShort.coldLoadMisses + sShort.coldStoreMisses +
                          sShort.capacityLoadMisses +
                          sShort.capacityStoreMisses;
        // Second half of the long run approximates the warmed-up state.
        uint64_t mLong = sLong.coldLoadMisses + sLong.coldStoreMisses +
                         sLong.capacityLoadMisses +
                         sLong.capacityStoreMisses;
        std::printf("%-16s | %9.0f%% %11lu | %9.0f%% %11lu\n",
                    spec.name.c_str(), 100 * coldFrac(sShort),
                    static_cast<unsigned long>(mShort),
                    100 * coldFrac(sLong),
                    static_cast<unsigned long>(mLong));
    }
    std::printf("\n(paper: warm-up shrinks the cold fraction for most "
                "benchmarks but not all — large-footprint ones keep "
                "touching new lines)\n");
    return 0;
}
