/**
 * Regenerates thesis Fig 5.4: dependence-chain error introduced by the
 * logarithmic interpolation between profiled ROB sizes. The paper
 * reports 0.34 % / 0.23 % / 0.61 % average for AP / ABP / CP.
 */
#include "bench_util.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 5.4", "chain-length interpolation error between ROB sizes");
    std::printf("%-16s %8s %8s %8s\n", "benchmark", "AP", "ABP", "CP");
    std::vector<double> apAll, abpAll, cpAll;
    for (const auto &spec : workloadSuite()) {
        Trace t = generateWorkload(spec, 200000);
        // Profile a dense set and a sparse set; interpolate the sparse
        // profile at the dense sizes and compare.
        ProfilerConfig dense;
        ProfilerConfig sparse;
        sparse.robSizes = {16, 48, 80, 112, 144, 176, 208, 240};
        Profile pd = profileTrace(t, dense);
        Profile ps = profileTrace(t, sparse);
        double apErr = 0, abpErr = 0, cpErr = 0;
        int n = 0;
        for (uint32_t rob : {32u, 64u, 96u, 128u, 160u, 192u, 224u}) {
            size_t i = pd.robIndex(rob);
            apErr += std::fabs(pctErr(ps.chains.ap(rob),
                                      pd.chains.apAt(i)));
            abpErr += std::fabs(pctErr(ps.chains.abp(rob),
                                       pd.chains.abpAt(i)));
            cpErr += std::fabs(pctErr(ps.chains.cp(rob),
                                      pd.chains.cpAt(i)));
            n++;
        }
        std::printf("%-16s %7.2f%% %7.2f%% %7.2f%%\n", spec.name.c_str(),
                    apErr / n, abpErr / n, cpErr / n);
        apAll.push_back(apErr / n);
        abpAll.push_back(abpErr / n);
        cpAll.push_back(cpErr / n);
    }
    std::printf("\nsuite avg: AP %.2f%%  ABP %.2f%%  CP %.2f%%  "
                "(paper: 0.34%% / 0.23%% / 0.61%%)\n",
                meanAbs(apAll), meanAbs(abpAll), meanAbs(cpAll));
    return 0;
}
