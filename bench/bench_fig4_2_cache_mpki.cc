/**
 * Regenerates thesis Fig 4.2: StatStack-predicted vs simulated MPKI for
 * the three-level reference hierarchy (32 KB / 256 KB / 8 MB).
 */
#include "bench_util.hh"
#include "model/interval_model.hh"
#include "sim/ooo_core.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 4.2", "cache MPKI: StatStack model vs simulator, 3 levels");
    auto b = suiteBundle();
    CoreConfig cfg = CoreConfig::nehalemReference();
    std::printf("%-16s %8s %8s | %8s %8s | %8s %8s\n", "benchmark",
                "L1 sim", "L1 mod", "L2 sim", "L2 mod", "L3 sim",
                "L3 mod");
    std::vector<double> e1, e2, e3;
    for (size_t i = 0; i < b.size(); ++i) {
        auto sim = simulate(b.traces[i], cfg);
        auto model = evaluateModel(b.profiles[i], cfg);
        double kilo =
            static_cast<double>(b.traces[i].numInstructions()) / 1000.0;
        double s1 = sim.mem.l1d.loadMisses / kilo;
        double s2 = sim.mem.l2.loadMisses / kilo;
        double s3 = sim.mem.l3.loadMisses / kilo;
        double m1 = model.loadMissesL1 / kilo;
        double m2 = model.loadMissesL2 / kilo;
        double m3 = model.loadMissesL3 / kilo;
        std::printf("%-16s %8.1f %8.1f | %8.1f %8.1f | %8.1f %8.1f\n",
                    b.specs[i].name.c_str(), s1, m1, s2, m2, s3, m3);
        // Follow the paper: only count benchmarks with meaningful MPKI.
        if (s1 > 10) e1.push_back(pctErr(m1, s1));
        if (s2 > 10) e2.push_back(pctErr(m2, s2));
        if (s3 > 10) e3.push_back(pctErr(m3, s3));
    }
    std::printf("\navg |err| for MPKI>10: L1 %.1f%%  L2 %.1f%%  L3 %.1f%%"
                "  (paper: 4.1%% / 6.7%% / 3.5%%)\n",
                meanAbs(e1), meanAbs(e2), meanAbs(e3));
    return 0;
}
