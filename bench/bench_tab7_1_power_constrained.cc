/**
 * Regenerates thesis Table 7.1: the fastest predicted design under a
 * power budget, per workload.
 */
#include "bench_util.hh"
#include "dse/explorer.hh"
#include "uarch/design_space.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Tab 7.1", "optimizing performance under power constraints");
    auto b = makeBundle({suiteWorkload("dense_compute"),
                         suiteWorkload("stream_add"),
                         suiteWorkload("mix_mid"),
                         suiteWorkload("branchy")},
                        120000);
    DesignSpace space = DesignSpace::small();

    const double budgets[] = {6.0, 8.0, 12.0, 1e9};
    std::printf("%-16s %10s %12s %10s  %s\n", "benchmark", "budget W",
                "pred CPI", "pred W", "chosen core");
    for (size_t wi = 0; wi < b.size(); ++wi) {
        // Model-predicted CPI and power per config.
        std::vector<double> cpi, watts;
        for (const auto &cfg : space.configs()) {
            auto res = evaluateModel(b.profiles[wi], cfg);
            cpi.push_back(res.cpiPerUop());
            watts.push_back(computePower(res.activity, cfg).total());
        }
        for (double budget : budgets) {
            int best = -1;
            for (size_t ci = 0; ci < space.size(); ++ci) {
                if (watts[ci] > budget)
                    continue;
                if (best < 0 || cpi[ci] < cpi[best])
                    best = static_cast<int>(ci);
            }
            if (best < 0) {
                std::printf("%-16s %10.1f %12s\n",
                            b.specs[wi].name.c_str(), budget,
                            "infeasible");
                continue;
            }
            std::printf("%-16s %10.1f %12.3f %10.2f  %s\n",
                        b.specs[wi].name.c_str(),
                        budget >= 1e8 ? 999.0 : budget, cpi[best],
                        watts[best], space[best].name.c_str());
        }
        std::printf("\n");
    }
    return 0;
}
