/**
 * Regenerates thesis Fig 6.1: CPI stacks from the model and from the
 * simulator on the reference architecture — the paper's headline
 * absolute-accuracy result (ISPASS'15: ~13 % average CPI error).
 */
#include "bench_util.hh"
#include "dse/explorer.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 6.1 / §6.2.1",
           "CPI stacks, model vs simulator, reference architecture");
    auto b = suiteBundle();
    CoreConfig cfg = CoreConfig::nehalemReference();

    std::printf("%-16s %-5s %7s %7s %7s %7s %7s %7s | %7s\n", "benchmark",
                "side", "base", "branch", "icache", "l2hit", "llc",
                "dram", "CPI");
    std::vector<double> errs;
    for (size_t i = 0; i < b.size(); ++i) {
        auto e = evaluatePair(b.traces[i], b.profiles[i], cfg);
        double n = static_cast<double>(b.traces[i].size());
        auto row = [&](const char *side, const CpiStack &s, double cpi) {
            std::printf("%-16s %-5s %7.3f %7.3f %7.3f %7.3f %7.3f %7.3f "
                        "| %7.3f\n",
                        side == std::string("sim") ?
                            b.specs[i].name.c_str() : "",
                        side, s.base / n, s.branch / n, s.icache / n,
                        s.l2hit / n, s.llcHit / n, s.dram / n, cpi);
        };
        row("sim", e.sim.stack, e.simCpi());
        row("model", e.model.stack, e.modelCpi());
        errs.push_back(100 * e.cpiError());
    }
    std::printf("\nreference-architecture CPI error: avg |err| %.1f%%, "
                "max %.1f%%  (ISPASS'15 paper: ~13%% avg)\n",
                meanAbs(errs), maxAbs(errs));
    return 0;
}
