/**
 * Regenerates thesis Fig 6.18: MLP-model error with a hardware stride
 * prefetcher enabled — only the stride model can account for it
 * (CAL'18: 3.6 % vs 16.9 % DRAM-wait error).
 */
#include "bench_util.hh"
#include "dse/explorer.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 6.18", "stride vs cold-miss MLP with stride prefetching");
    auto b = makeBundle(memoryBoundSuite(), 200000);
    CoreConfig cfg = CoreConfig::nehalemReference();
    cfg.prefetcherEnabled = true;
    cfg.prefetcherEntries = 64;

    ModelOptions cold;
    cold.mlpMode = ModelOptions::MlpMode::ColdMiss;
    cold.modelPrefetcher = false; // cold-miss model cannot see prefetches
    ModelOptions stride;
    stride.mlpMode = ModelOptions::MlpMode::Stride;

    std::printf("%-16s %11s %10s %10s | %9s %9s\n", "benchmark",
                "sim memCPI", "cold", "stride", "cold err",
                "stride err");
    std::vector<double> coldErr, strideErr;
    for (size_t i = 0; i < b.size(); ++i) {
        auto sim = simulate(b.traces[i], cfg);
        auto mc = evaluateModel(b.profiles[i], cfg, cold);
        auto ms = evaluateModel(b.profiles[i], cfg, stride);
        double n = static_cast<double>(b.traces[i].size());
        double simDram =
            (sim.stack.dram + sim.stack.l2hit + sim.stack.llcHit) / n;
        // DRAM-wait error normalized to the total simulated CPI: the
        // prefetcher can drive the DRAM component itself near zero, so
        // a component-relative error would be ill-conditioned.
        double simCpi = sim.cpiPerUop();
        double mcMem = (mc.stack.dram + mc.stack.llcHit) / n;
        double msMem = (ms.stack.dram + ms.stack.llcHit) / n;
        double ec = 100 * (mcMem - simDram) / simCpi;
        double es = 100 * (msMem - simDram) / simCpi;
        std::printf("%-16s %11.3f %10.3f %10.3f | %8.1f%% %8.1f%%\n",
                    b.specs[i].name.c_str(), simDram, mcMem, msMem, ec, es);
        coldErr.push_back(ec);
        strideErr.push_back(es);
    }
    std::printf("\nmemory-stall error (of total CPI): cold-miss (blind to "
                "prefetching) %.1f%%  stride %.1f%%  "
                "(paper: 16.9%% vs 3.6%%)\n",
                meanAbs(coldErr), meanAbs(strideErr));
    return 0;
}
