/**
 * Regenerates thesis Table 6.2: average and maximum CPI error as the
 * micro-architecture independent components are enabled one by one.
 */
#include "bench_util.hh"
#include "model/interval_model.hh"
#include "sim/ooo_core.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Tab 6.2", "error when adding each model component");
    auto b = suiteBundle();
    CoreConfig cfg = CoreConfig::nehalemReference();

    std::vector<double> simCycles;
    for (const auto &t : b.traces)
        simCycles.push_back(static_cast<double>(simulate(t, cfg).cycles));

    struct Step {
        const char *name;
        ModelOptions opts;
    };
    std::vector<Step> steps;
    {
        ModelOptions o;
        o.mlpMode = ModelOptions::MlpMode::None;
        o.modelLlcChaining = false;
        o.modelBus = false;
        o.modelMshrs = false;
        steps.push_back({"base + branch + caches (serial memory)", o});
        o.mlpMode = ModelOptions::MlpMode::ColdMiss;
        steps.push_back({"+ cold-miss MLP", o});
        o.mlpMode = ModelOptions::MlpMode::Stride;
        steps.push_back({"+ stride MLP", o});
        o.modelMshrs = true;
        steps.push_back({"+ MSHR cap", o});
        o.modelBus = true;
        steps.push_back({"+ memory bus queuing", o});
        o.modelLlcChaining = true;
        steps.push_back({"+ LLC-hit chaining (full model)", o});
    }

    std::printf("%-42s %10s %10s\n", "configuration", "avg |err|",
                "max |err|");
    for (const auto &step : steps) {
        std::vector<double> errs;
        for (size_t i = 0; i < b.size(); ++i) {
            auto res = evaluateModel(b.profiles[i], cfg, step.opts);
            errs.push_back(pctErr(res.cycles, simCycles[i]));
        }
        std::printf("%-42s %9.1f%% %9.1f%%\n", step.name, meanAbs(errs),
                    maxAbs(errs));
    }
    return 0;
}
