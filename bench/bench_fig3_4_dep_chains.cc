/** Regenerates thesis Fig 3.4: AP / ABP / CP chain lengths at ROB 128. */
#include "bench_util.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 3.4",
           "average path, average branch path, critical path (ROB=128)");
    auto b = suiteBundle();
    std::printf("%-16s %8s %8s %8s\n", "benchmark", "AP", "ABP", "CP");
    double apSum = 0, cpSum = 0;
    for (size_t i = 0; i < b.size(); ++i) {
        const auto &c = b.profiles[i].chains;
        std::printf("%-16s %8.2f %8.2f %8.2f\n",
                    b.specs[i].name.c_str(), c.ap(128), c.abp(128),
                    c.cp(128));
        apSum += c.ap(128);
        cpSum += c.cp(128);
    }
    std::printf("\nCP / AP ratio (suite mean): %.2f  (paper: ~2.9x)\n",
                cpSum / apSum);
    return 0;
}
