/**
 * Regenerates thesis Fig 5.2: sampled vs non-sampled instruction mix.
 * The paper reports 0.08 % average / 1.8 % max per-category error.
 */
#include "bench_util.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 5.2", "sampled vs full instruction mix error");
    std::printf("%-16s %12s %12s\n", "benchmark", "avg |err|",
                "max |err|");
    double worst = 0, grand = 0;
    int n = 0;
    for (const auto &spec : workloadSuite()) {
        Trace t = generateWorkload(spec, 300000);
        ProfilerConfig full;
        full.sampling = SamplingConfig::full();
        ProfilerConfig sampled;
        sampled.sampling = {1000, 20000};
        Profile pf = profileTrace(t, full);
        Profile ps = profileTrace(t, sampled);
        double sum = 0, mx = 0;
        for (int ty = 0; ty < kNumUopTypes; ++ty) {
            double d = 100.0 *
                std::fabs(pf.uopFraction(static_cast<UopType>(ty)) -
                          ps.uopFraction(static_cast<UopType>(ty)));
            sum += d;
            mx = std::max(mx, d);
        }
        std::printf("%-16s %11.3f%% %11.3f%%\n", spec.name.c_str(),
                    sum / kNumUopTypes, mx);
        worst = std::max(worst, mx);
        grand += sum / kNumUopTypes;
        n++;
    }
    std::printf("\nsuite: avg %.3f%%, max %.3f%%  "
                "(paper: 0.08%% avg, 1.8%% max)\n", grand / n, worst);
    return 0;
}
