/**
 * Regenerates thesis Fig 7.4/7.5: Pareto frontiers (delay vs power) from
 * simulation and from the model for selected workloads.
 */
#include "bench_util.hh"
#include "dse/explorer.hh"
#include "dse/pareto.hh"
#include "uarch/design_space.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 7.4/7.5", "Pareto frontiers, sim vs model");
    auto b = makeBundle({suiteWorkload("matrix_tile"),
                         suiteWorkload("mix_mid")},
                        120000);
    DesignSpace space = DesignSpace::small();
    auto points = sweep(b.traces, b.profiles, space.configs());

    for (size_t wi = 0; wi < b.size(); ++wi) {
        std::vector<Objective> trueObj, predObj;
        std::vector<size_t> cfgIdx;
        for (const auto &pt : points) {
            if (pt.workloadIdx != wi)
                continue;
            trueObj.push_back({pt.simCpi, pt.simWatts});
            predObj.push_back({pt.modelCpi, pt.modelWatts});
            cfgIdx.push_back(pt.configIdx);
        }
        auto tf = paretoFront(trueObj);
        auto pf = paretoFront(predObj);

        std::printf("\n%s — true Pareto front (simulated):\n",
                    b.specs[wi].name.c_str());
        for (size_t i : tf)
            std::printf("  %-30s CPI %7.3f  W %6.2f\n",
                        space[cfgIdx[i]].name.c_str(), trueObj[i].first,
                        trueObj[i].second);
        std::printf("%s — predicted Pareto front (model):\n",
                    b.specs[wi].name.c_str());
        for (size_t i : pf)
            std::printf("  %-30s CPI %7.3f  W %6.2f  (true: %7.3f / "
                        "%6.2f)\n",
                        space[cfgIdx[i]].name.c_str(), predObj[i].first,
                        predObj[i].second, trueObj[i].first,
                        trueObj[i].second);
        auto m = compareFronts(trueObj, predObj);
        std::printf("metrics: sens %.1f%%  spec %.1f%%  acc %.1f%%  HVR "
                    "%.1f%%\n",
                    100 * m.sensitivity, 100 * m.specificity,
                    100 * m.accuracy, 100 * m.hvr);
    }
    return 0;
}
