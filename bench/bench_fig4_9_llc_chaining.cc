/**
 * Regenerates thesis Fig 4.9: CPI over time for the gcc-like workload
 * with and without the chained-LLC-hit component.
 */
#include "bench_util.hh"
#include "model/interval_model.hh"
#include "sim/ooo_core.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 4.9", "CPI over time +/- LLC-hit chaining (mix_mid)");
    WorkloadSpec spec = suiteWorkload("mix_mid");
    Trace t = generateWorkload(spec, 400000);
    CoreConfig cfg = CoreConfig::nehalemReference();

    SimOptions so;
    so.cpiWindowUops = 20000;
    auto sim = simulate(t, cfg, so);
    Profile p = profileTrace(t, {});
    ModelOptions with;
    ModelOptions without;
    without.modelLlcChaining = false;
    auto mW = evaluateModel(p, cfg, with);
    auto mN = evaluateModel(p, cfg, without);

    // The model's windows are micro-traces (one per 20k-uop window), so
    // series align 1:1 with the simulator's 20k-uop windows.
    size_t n = std::min(sim.windowCpi.size(), mW.windowCpi.size());
    std::printf("%-8s %10s %12s %16s\n", "window", "sim CPI",
                "model CPI", "model, no chain");
    for (size_t i = 0; i < n; ++i) {
        std::printf("%-8zu %10.3f %12.3f %16.3f\n", i, sim.windowCpi[i],
                    mW.windowCpi[i], mN.windowCpi[i]);
    }
    double simC = static_cast<double>(sim.cycles);
    std::printf("\ntotal error with chaining %.1f%%, without %.1f%%  "
                "(paper gcc: -3.6%% vs -12.3%%)\n",
                pctErr(mW.cycles, simC), pctErr(mN.cycles, simC));
    return 0;
}
