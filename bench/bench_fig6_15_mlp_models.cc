/**
 * Regenerates thesis Fig 6.15-6.17: cold-miss vs stride MLP model error
 * on the memory-bound suite, without hardware prefetching. The CAL'18
 * result: the stride model clearly beats the cold-miss model on full
 * executions.
 */
#include "bench_util.hh"
#include "dse/explorer.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 6.15-6.17", "cold-miss vs stride MLP (no prefetcher)");
    auto b = makeBundle(memoryBoundSuite(), 200000);
    CoreConfig cfg = CoreConfig::nehalemReference();

    ModelOptions cold;
    cold.mlpMode = ModelOptions::MlpMode::ColdMiss;
    ModelOptions stride;
    stride.mlpMode = ModelOptions::MlpMode::Stride;

    std::printf("%-16s %8s %8s %8s | %9s %9s\n", "benchmark", "sim MLP",
                "cold", "stride", "cold err", "stride err");
    std::vector<double> coldErr, strideErr;
    for (size_t i = 0; i < b.size(); ++i) {
        auto sim = simulate(b.traces[i], cfg);
        auto mc = evaluateModel(b.profiles[i], cfg, cold);
        auto ms = evaluateModel(b.profiles[i], cfg, stride);
        double simC = static_cast<double>(sim.cycles);
        double ec = pctErr(mc.cycles, simC);
        double es = pctErr(ms.cycles, simC);
        std::printf("%-16s %8.2f %8.2f %8.2f | %8.1f%% %8.1f%%\n",
                    b.specs[i].name.c_str(), sim.avgMlp, mc.mlp, ms.mlp,
                    ec, es);
        coldErr.push_back(ec);
        strideErr.push_back(es);
    }
    std::printf("\nCPI avg |err|: cold-miss %.1f%%  stride %.1f%%  "
                "(paper trend: stride < cold-miss on full runs)\n",
                meanAbs(coldErr), meanAbs(strideErr));
    return 0;
}
