/**
 * Regenerates thesis Fig 6.8-6.10: power prediction error across the
 * design space (TC'16: 4.3 % average).
 */
#include <algorithm>

#include "bench_util.hh"
#include "dse/explorer.hh"
#include "uarch/design_space.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 6.9/6.10", "power error across the design space");
    auto b = makeBundle({suiteWorkload("stream_add"),
                         suiteWorkload("ptr_chase"),
                         suiteWorkload("dense_compute"),
                         suiteWorkload("matrix_tile"),
                         suiteWorkload("mix_mid"),
                         suiteWorkload("balanced_mix")},
                        120000);
    DesignSpace space = DesignSpace::small();
    auto points = sweep(b.traces, b.profiles, space.configs());

    // Cumulative error distribution (Fig 6.8-style).
    std::vector<double> errs;
    for (const auto &pt : points)
        errs.push_back(std::fabs(100 * pt.powerError()));
    std::sort(errs.begin(), errs.end());
    std::printf("cumulative power |err| distribution:\n");
    for (double q : {0.25, 0.5, 0.75, 0.9, 1.0}) {
        size_t idx = std::min(errs.size() - 1,
                              static_cast<size_t>(q * errs.size()));
        std::printf("  p%-3.0f %6.1f%%\n", q * 100, errs[idx]);
    }
    double sum = 0;
    for (double e : errs)
        sum += e;
    std::printf("\ndesign-space power error: avg |err| %.1f%%, max %.1f%%"
                "  (paper: 4.3%%-7%% avg)\n",
                sum / errs.size(), errs.back());
    return 0;
}
