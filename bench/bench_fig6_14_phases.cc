/**
 * Regenerates thesis Fig 6.14: phase behaviour over time — windowed CPI
 * from the simulator and from the per-micro-trace model evaluation.
 */
#include "bench_util.hh"
#include "model/interval_model.hh"
#include "sim/ooo_core.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 6.14", "phase tracking: windowed CPI, sim vs model");
    CoreConfig cfg = CoreConfig::nehalemReference();
    for (const auto &spec : phasedSuite()) {
        Trace t = generatePhased(spec);
        SimOptions so;
        so.cpiWindowUops = 20000;
        auto sim = simulate(t, cfg, so);
        Profile p = profileTrace(t, {});
        auto model = evaluateModel(p, cfg);

        std::printf("\n%s (windows of 20k uops)\n", spec.name.c_str());
        std::printf("%-8s %10s %10s\n", "window", "sim CPI", "model CPI");
        size_t n = std::min(sim.windowCpi.size(), model.windowCpi.size());
        double corrNum = 0, sx = 0, sy = 0, sxx = 0, syy = 0;
        for (size_t i = 0; i < n; ++i) {
            std::printf("%-8zu %10.3f %10.3f\n", i, sim.windowCpi[i],
                        model.windowCpi[i]);
            double x = sim.windowCpi[i], y = model.windowCpi[i];
            sx += x; sy += y; sxx += x * x; syy += y * y; corrNum += x * y;
        }
        double cov = corrNum / n - (sx / n) * (sy / n);
        double vx = sxx / n - (sx / n) * (sx / n);
        double vy = syy / n - (sy / n) * (sy / n);
        double corr = vx > 0 && vy > 0 ? cov / std::sqrt(vx * vy) : 0;
        std::printf("phase correlation (Pearson): %.3f\n", corr);
    }
    return 0;
}
