/**
 * Regenerates thesis Fig 6.7/6.8: power stacks from the model and the
 * simulator on the reference machine (ISPASS'15: ~7 % average power
 * error).
 */
#include "bench_util.hh"
#include "dse/explorer.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 6.7", "power stacks, model vs simulator");
    auto b = suiteBundle();
    CoreConfig cfg = CoreConfig::nehalemReference();
    std::printf("%-16s %-5s %7s %7s %7s %7s %8s | %7s\n", "benchmark",
                "side", "core", "caches", "dram", "static", "dynamic",
                "total W");
    std::vector<double> errs;
    for (size_t i = 0; i < b.size(); ++i) {
        auto e = evaluatePair(b.traces[i], b.profiles[i], cfg);
        auto row = [&](const char *side, const PowerBreakdown &p) {
            std::printf("%-16s %-5s %7.2f %7.2f %7.2f %7.2f %8.2f | "
                        "%7.2f\n",
                        side == std::string("sim") ?
                            b.specs[i].name.c_str() : "",
                        side, p.corePower(), p.cachePower(), p.dram,
                        p.staticPower, p.dynamicPower(), p.total());
        };
        row("sim", e.simPower);
        row("model", e.modelPower);
        errs.push_back(100 * e.powerError());
    }
    std::printf("\nreference-architecture power error: avg |err| %.1f%%, "
                "max %.1f%%  (ISPASS'15 paper: ~7%% avg)\n",
                meanAbs(errs), maxAbs(errs));
    return 0;
}
