/**
 * Regenerates thesis Fig 4.3: normalized execution time with and without
 * MLP modeling. Not modeling MLP serializes every DRAM access; the paper
 * reports a 24.6 % average (96 % max) error from that omission.
 */
#include "bench_util.hh"
#include "model/interval_model.hh"
#include "sim/ooo_core.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 4.3", "normalized execution time with/without MLP model");
    auto b = suiteBundle();
    CoreConfig cfg = CoreConfig::nehalemReference();
    ModelOptions with;
    ModelOptions without;
    without.mlpMode = ModelOptions::MlpMode::None;

    std::printf("%-16s %10s %10s %10s %9s\n", "benchmark", "sim",
                "model+MLP", "model-noMLP", "sim MLP");
    std::vector<double> errNoMlp;
    for (size_t i = 0; i < b.size(); ++i) {
        auto sim = simulate(b.traces[i], cfg);
        double simC = static_cast<double>(sim.cycles);
        double withC = evaluateModel(b.profiles[i], cfg, with).cycles;
        double noC = evaluateModel(b.profiles[i], cfg, without).cycles;
        std::printf("%-16s %10.3f %10.3f %10.3f %9.2f\n",
                    b.specs[i].name.c_str(), 1.0, withC / simC,
                    noC / simC, sim.avgMlp);
        errNoMlp.push_back(pctErr(noC, simC));
    }
    std::printf("\nno-MLP avg |err| %.1f%%, max %.1f%%  "
                "(paper: 24.6%% avg, 96%% max)\n",
                meanAbs(errNoMlp), maxAbs(errNoMlp));
    return 0;
}
