/**
 * `.mtf` ingestion-throughput benchmarks (items/s = uops/s).
 *
 * BM_MtfEncode measures MtfWriter encoding into a memory buffer,
 * BM_MtfDecode raw MtfReader::decode() over an opened trace, and
 * BM_MtfProfileStream the full ingest path the CLI exercises —
 * MtfTraceSource streamed through profileSource / the parallel
 * profiler. run_benchmarks.sh records the decode rate as the trace
 * ingest-throughput entry in BENCH_speedup.json.
 */
#include <benchmark/benchmark.h>

#include <sstream>

#include "profiler/profiler.hh"
#include "trace/mtf.hh"
#include "workloads/workload.hh"

namespace {

using namespace mipp;

constexpr size_t kUops = 2000000;

const Trace &
sharedTrace()
{
    static Trace t =
        generateWorkload(suiteWorkload("balanced_mix"), kUops);
    return t;
}

/** The shared trace encoded once; parsed per benchmark setup. */
const std::string &
sharedMtfBytes()
{
    static std::string bytes = [] {
        std::ostringstream os;
        Status st = writeMtf(sharedTrace(), os);
        if (!st.isOk())
            std::abort();
        return os.str();
    }();
    return bytes;
}

void
BM_MtfEncode(benchmark::State &state)
{
    for (auto _ : state) {
        std::ostringstream os;
        MtfWriter w(os);
        for (const MicroOp &op : sharedTrace())
            w.append(op);
        Status st = w.finish();
        benchmark::DoNotOptimize(st.isOk());
    }
    state.SetItemsProcessed(state.iterations() * sharedTrace().size());
    state.SetBytesProcessed(state.iterations() *
                            sharedMtfBytes().size());
}
BENCHMARK(BM_MtfEncode)->Unit(benchmark::kMillisecond);

void
BM_MtfDecode(benchmark::State &state)
{
    MtfReader reader;
    Status st = MtfReader::parse(sharedMtfBytes(), reader);
    if (!st.isOk())
        std::abort();
    std::vector<MicroOp> chunk(65536);
    for (auto _ : state) {
        reader.rewind();
        uint64_t n = 0;
        for (;;) {
            size_t got = reader.decode(chunk.data(), chunk.size());
            if (!got)
                break;
            n += got;
        }
        benchmark::DoNotOptimize(n);
    }
    state.SetItemsProcessed(state.iterations() * sharedTrace().size());
    state.SetBytesProcessed(state.iterations() *
                            sharedMtfBytes().size());
}
BENCHMARK(BM_MtfDecode)->Unit(benchmark::kMillisecond);

/** Full ingest path: decode + profile, threads = range(0). */
void
BM_MtfProfileStream(benchmark::State &state)
{
    MtfReader reader;
    Status st = MtfReader::parse(sharedMtfBytes(), reader);
    if (!st.isOk())
        std::abort();
    unsigned threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        MtfTraceSource source(reader);
        Profile p;
        if (threads == 1) {
            p = profileSource(source, {});
        } else {
            ParallelProfileOptions popts;
            popts.threads = threads;
            p = profileSourceParallel(source, {}, popts);
        }
        benchmark::DoNotOptimize(p.profiledUops);
    }
    state.SetItemsProcessed(state.iterations() * sharedTrace().size());
}
BENCHMARK(BM_MtfProfileStream)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
