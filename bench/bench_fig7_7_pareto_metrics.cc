/**
 * Regenerates thesis Fig 7.7/7.9: Pareto-pruning quality over the design
 * space — sensitivity, specificity, accuracy and HVR per workload. The
 * thesis averages: 46.2 % / 87.9 % / 76.8 % / 97.0 %.
 */
#include "bench_util.hh"
#include "dse/explorer.hh"
#include "dse/pareto.hh"
#include "uarch/design_space.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 7.7/7.9",
           "Pareto pruning: sensitivity / specificity / accuracy / HVR");
    auto b = makeBundle({suiteWorkload("stream_add"),
                         suiteWorkload("ptr_chase"),
                         suiteWorkload("dense_compute"),
                         suiteWorkload("matrix_tile"),
                         suiteWorkload("mix_mid"),
                         suiteWorkload("balanced_mix")},
                        120000);
    DesignSpace space = DesignSpace::small();
    auto points = sweep(b.traces, b.profiles, space.configs());

    std::printf("%-16s %8s %8s %8s %8s\n", "benchmark", "sens", "spec",
                "acc", "HVR");
    double s1 = 0, s2 = 0, s3 = 0, s4 = 0;
    for (size_t wi = 0; wi < b.size(); ++wi) {
        std::vector<Objective> trueObj, predObj;
        for (const auto &pt : points) {
            if (pt.workloadIdx != wi)
                continue;
            trueObj.push_back({pt.simCpi, pt.simWatts});
            predObj.push_back({pt.modelCpi, pt.modelWatts});
        }
        auto m = compareFronts(trueObj, predObj);
        std::printf("%-16s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
                    b.specs[wi].name.c_str(), 100 * m.sensitivity,
                    100 * m.specificity, 100 * m.accuracy, 100 * m.hvr);
        s1 += m.sensitivity;
        s2 += m.specificity;
        s3 += m.accuracy;
        s4 += m.hvr;
    }
    double n = static_cast<double>(b.size());
    std::printf("\naverages: sens %.1f%%  spec %.1f%%  acc %.1f%%  HVR "
                "%.1f%%  (paper: 46.2 / 87.9 / 76.8 / 97.0)\n",
                100 * s1 / n, 100 * s2 / n, 100 * s3 / n, 100 * s4 / n);
    return 0;
}
