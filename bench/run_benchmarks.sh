#!/usr/bin/env bash
# Run bench_speedup and emit BENCH_speedup.json (benchmark -> ns/op,
# items/s) for the performance trajectory. A "baseline" block already
# present in the output file (e.g. the pre-optimization numbers) is
# preserved across runs.
#
# Usage: bench/run_benchmarks.sh [build-dir] [output-json]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_speedup.json}"
BIN="$BUILD_DIR/bench_speedup"

if [[ ! -x "$BIN" ]]; then
    echo "error: $BIN not found; build first:" >&2
    echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
fi

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# Five repetitions; the per-benchmark minimum is the most noise-robust
# estimate of the true cost on shared machines.
"$BIN" --benchmark_repetitions=5 --benchmark_format=json >"$RAW"

python3 - "$RAW" "$OUT" <<'EOF'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

old = {}
try:
    with open(out_path) as f:
        old = json.load(f)
except (OSError, ValueError):
    pass

benches = {}
for b in raw.get("benchmarks", []):
    if b.get("aggregate_name"):  # keep raw repetitions only
        continue
    name = b["run_name"]
    entry = {"ns_per_op": b["real_time"] * 1e6}  # reported in ms
    if "items_per_second" in b:
        entry["items_per_sec"] = b["items_per_second"]
    prev = benches.get(name)
    if prev is None or entry["ns_per_op"] < prev["ns_per_op"]:
        benches[name] = entry

out = {
    "context": {
        "date": raw.get("context", {}).get("date"),
        "num_cpus": raw.get("context", {}).get("num_cpus"),
        "aggregate": "min of 5 repetitions",
    },
    "benchmarks": benches,
}
if "baseline" in old:
    out["baseline"] = old["baseline"]

with open(out_path, "w") as f:
    json.dump(out, f, indent=2, sort_keys=True)
    f.write("\n")

for name, e in sorted(benches.items()):
    line = f"{name}: {e['ns_per_op'] / 1e6:.3f} ms/op"
    if "items_per_sec" in e:
        line += f", {e['items_per_sec'] / 1e6:.2f} M uops/s"
    print(line)
print(f"wrote {out_path}")
EOF
