#!/usr/bin/env bash
# Run the google-benchmark binaries (bench_speedup + bench_dse_sweep) and
# emit BENCH_speedup.json (benchmark -> ns/op, items/s) for the
# performance trajectory. A "baseline" block already present in the
# output file (e.g. the pre-optimization numbers) is preserved across
# runs.
#
# Usage: bench/run_benchmarks.sh [--smoke] [build-dir] [output-json]
#   --smoke   one repetition with a short min-time, for CI plumbing
#             checks. Numbers are noisy, so smoke runs never write the
#             JSON — the recorded trajectory only ever holds the full
#             5-repetition protocol.
set -euo pipefail

SMOKE=0
ARGS=()
for a in "$@"; do
    case "$a" in
      --smoke) SMOKE=1 ;;
      *) ARGS+=("$a") ;;
    esac
done
BUILD_DIR="${ARGS[0]:-build}"
OUT="${ARGS[1]:-BENCH_speedup.json}"

BENCH_FLAGS=(--benchmark_format=json)
if [[ "$SMOKE" == 1 ]]; then
    # One repetition, short min-time: proves the binaries run and emit
    # parseable JSON without occupying a CI runner for minutes.
    # Unsuffixed seconds: accepted by both pre- and post-1.8 benchmark.
    BENCH_FLAGS+=(--benchmark_repetitions=1 --benchmark_min_time=0.01)
else
    # Five repetitions; the per-benchmark minimum is the most noise-robust
    # estimate of the true cost on shared machines.
    BENCH_FLAGS+=(--benchmark_repetitions=5)
fi

RAWS=()
# ${RAWS[@]+...} guard: expanding an empty array trips `set -u` on
# bash < 4.4 (macOS ships 3.2).
cleanup() { rm -f ${RAWS[@]+"${RAWS[@]}"}; }
trap cleanup EXIT

for bin in bench_speedup bench_dse_sweep; do
    path="$BUILD_DIR/$bin"
    if [[ ! -x "$path" ]]; then
        echo "error: $path not found; build first:" >&2
        echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
        exit 1
    fi
    raw="$(mktemp)"
    RAWS+=("$raw")
    "$path" "${BENCH_FLAGS[@]}" >"$raw"
done

if [[ "$SMOKE" == 1 ]]; then
    python3 - "${RAWS[@]}" <<'EOF'
import json, sys
for raw_path in sys.argv[1:]:
    with open(raw_path) as f:
        raw = json.load(f)
    for b in raw.get("benchmarks", []):
        if b.get("aggregate_name"):
            continue
        print(f"{b['run_name']}: {b['real_time']:.3f} ms/op")
print("smoke run OK (no JSON written)")
EOF
    exit 0
fi

python3 - "$OUT" "${RAWS[@]}" <<'EOF'
import json
import sys

out_path, raw_paths = sys.argv[1], sys.argv[2:]

old = {}
try:
    with open(out_path) as f:
        old = json.load(f)
except (OSError, ValueError):
    pass

benches = {}
context = {}
for raw_path in raw_paths:
    with open(raw_path) as f:
        raw = json.load(f)
    context = raw.get("context", context)
    for b in raw.get("benchmarks", []):
        if b.get("aggregate_name"):  # keep raw repetitions only
            continue
        name = b["run_name"]
        entry = {"ns_per_op": b["real_time"] * 1e6}  # reported in ms
        if "items_per_second" in b:
            entry["items_per_sec"] = b["items_per_second"]
        prev = benches.get(name)
        if prev is None or entry["ns_per_op"] < prev["ns_per_op"]:
            benches[name] = entry

out = {
    "context": {
        "date": context.get("date"),
        "num_cpus": context.get("num_cpus"),
        "aggregate": "min of 5 repetitions",
        "protocol": old.get("context", {}).get("protocol")
            or "all benchmarks compiled with identical CMake flags (-O2) "
               "and run in one session; in-binary baseline/optimized "
               "pairs (e.g. BM_EvalUncached vs BM_EvalCached) are "
               "interleaved by the benchmark runner itself",
    },
    "benchmarks": benches,
}
for key in ("baseline", "speedup"):
    if key in old:
        out[key] = old[key]

# In-binary baseline/optimized pairs: derive speedups automatically.
pairs = {"BM_EvalCached": "BM_EvalUncached"}
for fast, slow in pairs.items():
    if fast in benches and slow in benches:
        out.setdefault("speedup", {})[fast + "_vs_" + slow] = round(
            benches[slow]["ns_per_op"] / benches[fast]["ns_per_op"], 3)

with open(out_path, "w") as f:
    json.dump(out, f, indent=2, sort_keys=True)
    f.write("\n")

for name, e in sorted(benches.items()):
    line = f"{name}: {e['ns_per_op'] / 1e6:.3f} ms/op"
    if "items_per_sec" in e:
        line += f", {e['items_per_sec'] / 1e6:.2f} M items/s"
    print(line)
print(f"wrote {out_path}")
EOF
