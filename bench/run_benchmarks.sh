#!/usr/bin/env bash
# Run the google-benchmark binaries and emit BENCH_speedup.json
# (benchmark -> ns/op, items/s) for the performance trajectory. A
# "baseline" block already present in the output file (e.g. the
# pre-optimization numbers) is preserved across runs.
#
# The binary list is DERIVED from bench/*.cc, not hardcoded: every
# source including <benchmark/benchmark.h> is a google-benchmark binary
# and is run with the benchmark protocol; every other bench_* source
# (the bench_fig* / bench_tab* figure generators) must at least exist as
# a built executable. A new bench source that fails to build, or a
# google-benchmark binary someone forgets to wire up, fails the run
# instead of being silently skipped.
#
# Usage: bench/run_benchmarks.sh [--smoke] [--skip-slow] [build-dir] \
#                                [output-json]
#   --smoke   one repetition with a short min-time, for CI plumbing
#             checks (this is the same path the build-and-test CI job
#             runs — there is deliberately no separate filtered
#             invocation). Numbers are noisy, so smoke runs write
#             bench_smoke.json (or the given output path) and never
#             touch BENCH_speedup.json — the recorded trajectory only
#             ever holds the full 5-repetition protocol. Implies
#             --skip-slow: a smoke check must not sweep 2^20 points.
#   --skip-slow  exclude benchmarks tagged slow by name (BM_*Million —
#             ~1 s per iteration x 5 repetitions) from a full run.
set -euo pipefail

SMOKE=0
SKIP_SLOW=0
ARGS=()
for a in "$@"; do
    case "$a" in
      --smoke) SMOKE=1; SKIP_SLOW=1 ;;
      --skip-slow) SKIP_SLOW=1 ;;
      *) ARGS+=("$a") ;;
    esac
done
BUILD_DIR="${ARGS[0]:-build}"
if [[ "$SMOKE" == 1 ]]; then
    OUT="${ARGS[1]:-bench_smoke.json}"
    if [[ "$(basename "$OUT")" == "BENCH_speedup.json" ]]; then
        echo "error: smoke runs must not write BENCH_speedup.json" >&2
        echo "(the trajectory only records the full protocol)" >&2
        exit 1
    fi
else
    OUT="${ARGS[1]:-BENCH_speedup.json}"
fi

BENCH_SRC_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"

# Derive the binary lists from the sources.
GBENCH_BINS=()
PLAIN_BINS=()
for src in "$BENCH_SRC_DIR"/bench_*.cc; do
    name="$(basename "$src" .cc)"
    if grep -q '#include <benchmark/benchmark.h>' "$src"; then
        GBENCH_BINS+=("$name")
    else
        PLAIN_BINS+=("$name")
    fi
done
if [[ ${#GBENCH_BINS[@]} -eq 0 ]]; then
    echo "error: no google-benchmark sources found in $BENCH_SRC_DIR" >&2
    exit 1
fi

# Every derived binary must have been built: a bench source that vanishes
# from the build is a rotten CMake glob, not an ignorable detail.
MISSING=()
for bin in ${GBENCH_BINS[@]+"${GBENCH_BINS[@]}"} \
           ${PLAIN_BINS[@]+"${PLAIN_BINS[@]}"}; do
    [[ -x "$BUILD_DIR/$bin" ]] || MISSING+=("$bin")
done
if [[ ${#MISSING[@]} -gt 0 ]]; then
    echo "error: missing bench binaries in $BUILD_DIR:" >&2
    printf '  %s\n' "${MISSING[@]}" >&2
    echo "build first: cmake -B $BUILD_DIR -S . && " \
         "cmake --build $BUILD_DIR -j" >&2
    exit 1
fi

BENCH_FLAGS=(--benchmark_format=json)
if [[ "$SKIP_SLOW" == 1 ]]; then
    # Slow-tagged benchmarks are excluded by naming convention: anything
    # matching BM_.*Million (the 2^20-point generated sweep).
    BENCH_FLAGS+=(--benchmark_filter=-BM_.*Million)
fi
if [[ "$SMOKE" == 1 ]]; then
    # One repetition, short min-time: proves the binaries run and emit
    # parseable JSON without occupying a CI runner for minutes.
    # Unsuffixed seconds: accepted by both pre- and post-1.8 benchmark.
    BENCH_FLAGS+=(--benchmark_repetitions=1 --benchmark_min_time=0.01)
else
    # Five repetitions; the per-benchmark minimum is the most noise-robust
    # estimate of the true cost on shared machines.
    BENCH_FLAGS+=(--benchmark_repetitions=5)
fi

RAWS=()
# ${RAWS[@]+...} guard: expanding an empty array trips `set -u` on
# bash < 4.4 (macOS ships 3.2).
cleanup() { rm -f ${RAWS[@]+"${RAWS[@]}"}; }
trap cleanup EXIT

RAW_ARGS=() # bin=rawpath pairs so the merge can blame a binary
for bin in "${GBENCH_BINS[@]}"; do
    raw="$(mktemp)"
    RAWS+=("$raw")
    RAW_ARGS+=("$bin=$raw")
    "$BUILD_DIR/$bin" "${BENCH_FLAGS[@]}" >"$raw"
done

if [[ "$SMOKE" == 1 ]]; then
    python3 - "$OUT" "${RAWS[@]}" <<'EOF'
import json, sys
out_path, raw_paths = sys.argv[1], sys.argv[2:]
benches = {}
for raw_path in raw_paths:
    with open(raw_path) as f:
        raw = json.load(f)
    for b in raw.get("benchmarks", []):
        if b.get("aggregate_name"):
            continue
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1,
                 "s": 1e3}[b.get("time_unit", "ns")]
        ms = b["real_time"] * scale
        benches[b["run_name"]] = {"ms_per_op": ms}
        print(f"{b['run_name']}: {ms:.6f} ms/op")
with open(out_path, "w") as f:
    json.dump({"protocol": "smoke (1 repetition, not comparable)",
               "benchmarks": benches}, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"smoke run OK (wrote {out_path}; trajectory JSON untouched)")
EOF
    exit 0
fi

MIPP_SKIP_SLOW="$SKIP_SLOW" python3 - "$OUT" "${RAW_ARGS[@]}" <<'EOF'
import json
import os
import re
import sys

out_path, raw_args = sys.argv[1], sys.argv[2:]
skip_slow = os.environ.get("MIPP_SKIP_SLOW") == "1"

old = {}
try:
    with open(out_path) as f:
        old = json.load(f)
except (OSError, ValueError):
    pass
old_names = set(old.get("benchmarks", {}))

benches = {}
context = {}
empty_bins = []
for raw_arg in raw_args:
    bin_name, _, raw_path = raw_arg.partition("=")
    with open(raw_path) as f:
        raw = json.load(f)
    context = raw.get("context", context)
    contributed = 0
    for b in raw.get("benchmarks", []):
        if b.get("aggregate_name"):  # keep raw repetitions only
            continue
        name = b["run_name"]
        # real_time is in the benchmark's own unit (our older binaries
        # set kMillisecond, bench_metrics keeps the ns default).
        scale = {"ns": 1, "us": 1e3, "ms": 1e6,
                 "s": 1e9}[b.get("time_unit", "ns")]
        entry = {"ns_per_op": b["real_time"] * scale}
        if "items_per_second" in b:
            entry["items_per_sec"] = b["items_per_second"]
        prev = benches.get(name)
        if prev is None or entry["ns_per_op"] < prev["ns_per_op"]:
            benches[name] = entry
        contributed += 1
    if contributed == 0:
        empty_bins.append(bin_name)

# Trajectory-gain guard (full protocol only): a binary that emitted no
# entries, or a merged set that does not cover what the trajectory
# already records, means a filter/name rot — fail instead of silently
# writing a shrunken trajectory. A --skip-slow run carries the last
# full measurement of the slow-tagged benchmarks forward unchanged
# (they only update on runs without the flag) rather than dropping
# them.
if empty_bins:
    sys.exit("error: no benchmark entries from: " + ", ".join(empty_bins))
if not benches:
    sys.exit("error: merged benchmark set is empty")
slow_re = re.compile(r"^BM_.*Million")
for name in old_names - set(benches):
    if skip_slow and slow_re.match(name):
        benches[name] = old["benchmarks"][name]
    else:
        sys.exit("error: trajectory entry vanished from this run: "
                 + name + " (renamed benchmarks need the old entry "
                 "pruned deliberately, not dropped by accident)")

out = {
    "context": {
        "date": context.get("date"),
        "num_cpus": context.get("num_cpus"),
        "aggregate": "min of 5 repetitions",
        "protocol": old.get("context", {}).get("protocol")
            or "all benchmarks compiled with identical CMake flags (-O2) "
               "and run in one session; in-binary baseline/optimized "
               "pairs (e.g. BM_EvalUncached vs BM_EvalCached) are "
               "interleaved by the benchmark runner itself",
    },
    "benchmarks": benches,
}
for key in ("baseline", "speedup"):
    if key in old:
        out[key] = old[key]

# In-binary baseline/optimized pairs: derive speedups automatically.
pairs = {"BM_EvalCached": "BM_EvalUncached",
         "BM_DseSweepBatched": "BM_DseSweepModelOnly",
         "BM_ProfileParallel/2": "BM_ProfileSequential",
         "BM_ProfileParallel/4": "BM_ProfileSequential"}
for fast, slow in pairs.items():
    if fast in benches and slow in benches:
        out.setdefault("speedup", {})[fast + "_vs_" + slow] = round(
            benches[slow]["ns_per_op"] / benches[fast]["ns_per_op"], 3)

with open(out_path, "w") as f:
    json.dump(out, f, indent=2, sort_keys=True)
    f.write("\n")

for name, e in sorted(benches.items()):
    line = f"{name}: {e['ns_per_op'] / 1e6:.6f} ms/op"
    if "items_per_sec" in e:
        line += f", {e['items_per_sec'] / 1e6:.2f} M items/s"
    print(line)
print(f"wrote {out_path}")
EOF
