/**
 * Regenerates thesis Fig 3.10: MPKI prediction error of the entropy
 * model for five 4 KB predictors across the suite.
 */
#include "bench_util.hh"
#include "model/branch_model.hh"
#include "sim/branch_predictor.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 3.10",
           "entropy-model MPKI error per predictor (box summary)");
    auto b = suiteBundle();
    const BranchPredictorKind kinds[] = {
        BranchPredictorKind::GAg, BranchPredictorKind::GAp,
        BranchPredictorKind::PAp, BranchPredictorKind::GShare,
        BranchPredictorKind::Tournament};

    std::printf("%-12s %10s %10s %10s\n", "predictor", "avg MPKI",
                "avg |err|", "max |err|");
    for (auto kind : kinds) {
        std::vector<double> errs;
        double mpkiSum = 0;
        auto fit = BranchMissModel::pretrained(kind);
        for (size_t i = 0; i < b.size(); ++i) {
            auto bp = BranchPredictor::create(kind, 4096);
            uint64_t n = 0, miss = 0;
            for (const auto &op : b.traces[i]) {
                if (op.type != UopType::Branch)
                    continue;
                n++;
                miss += !bp->predictAndUpdate(op.pc, op.taken);
            }
            double insts =
                static_cast<double>(b.traces[i].numInstructions());
            double simMpki = 1000.0 * miss / insts;
            double branches = static_cast<double>(
                b.profiles[i].branch.branches);
            double modelMpki =
                1000.0 *
                fit.missRate(b.profiles[i].branch.entropy()) * branches /
                insts;
            errs.push_back(modelMpki - simMpki);
            mpkiSum += simMpki;
        }
        std::printf("%-12s %10.1f %10.2f %10.2f\n",
                    std::string(branchPredictorName(kind)).c_str(),
                    mpkiSum / b.size(), meanAbs(errs), maxAbs(errs));
    }
    std::printf("\n(paper: avg absolute MPKI errors of 0.6-1.1 for SPEC; "
                "the synthetic suite has higher branch rates, so errors "
                "scale accordingly)\n");
    return 0;
}
