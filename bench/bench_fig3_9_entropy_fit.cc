/**
 * Regenerates thesis Fig 3.9: the linear fit between branch entropy and
 * predictor miss rate, trained over the suite (two seeds per workload).
 */
#include "bench_util.hh"
#include "model/branch_model.hh"
#include "sim/branch_predictor.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 3.9", "branch entropy vs miss rate, linear fit per predictor");
    const BranchPredictorKind kinds[] = {
        BranchPredictorKind::GAg, BranchPredictorKind::GAp,
        BranchPredictorKind::PAp, BranchPredictorKind::GShare,
        BranchPredictorKind::Tournament};

    // Training set: every suite workload at two seeds.
    struct Sample {
        double entropy;
        Trace trace;
    };
    std::vector<Sample> samples;
    for (auto spec : workloadSuite()) {
        for (uint64_t s = 0; s < 2; ++s) {
            spec.seed += s * 977;
            Trace t = generateWorkload(spec, 150000);
            Profile p = profileTrace(t, {});
            samples.push_back({p.branch.entropy(), std::move(t)});
        }
    }

    std::printf("%-12s %9s %10s %7s\n", "predictor", "slope",
                "intercept", "r^2");
    for (auto kind : kinds) {
        EntropyFitTrainer tr;
        for (const auto &s : samples) {
            auto bp = BranchPredictor::create(kind, 4096);
            uint64_t n = 0, miss = 0;
            for (const auto &op : s.trace) {
                if (op.type != UopType::Branch)
                    continue;
                n++;
                miss += !bp->predictAndUpdate(op.pc, op.taken);
            }
            if (n)
                tr.add(s.entropy, static_cast<double>(miss) / n);
        }
        auto m = tr.fit(kind);
        std::printf("%-12s %9.4f %10.4f %7.3f\n",
                    std::string(branchPredictorName(kind)).c_str(),
                    m.slope, m.intercept, tr.r2());
    }
    std::printf("\n(paper: strongly linear relation across >400 "
                "experiments; regenerate BranchMissModel::pretrained "
                "from these rows)\n");
    return 0;
}
