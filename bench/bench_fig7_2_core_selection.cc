/**
 * Regenerates thesis Fig 7.1/7.2: selecting an application-specific core
 * from the design space versus one general-purpose core for all.
 */
#include "bench_util.hh"
#include "model/interval_model.hh"
#include "uarch/design_space.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 7.2", "application-specific vs general-purpose core");
    auto b = suiteBundle(120000);
    DesignSpace space = DesignSpace::small();

    // Model-predicted CPI for every (workload, config).
    std::vector<std::vector<double>> cpi(b.size());
    for (size_t wi = 0; wi < b.size(); ++wi)
        for (const auto &cfg : space.configs())
            cpi[wi].push_back(
                evaluateModel(b.profiles[wi], cfg).cpiPerUop());

    // General-purpose core: minimizes the suite-average CPI.
    size_t bestGeneral = 0;
    double bestAvg = 1e30;
    for (size_t ci = 0; ci < space.size(); ++ci) {
        double avg = 0;
        for (size_t wi = 0; wi < b.size(); ++wi)
            avg += cpi[wi][ci];
        if (avg < bestAvg) {
            bestAvg = avg;
            bestGeneral = ci;
        }
    }

    std::printf("general-purpose core: %s\n\n",
                space[bestGeneral].name.c_str());
    std::printf("%-16s %10s %10s %8s  %s\n", "benchmark", "general",
                "specific", "gain", "chosen core");
    double gainSum = 0;
    for (size_t wi = 0; wi < b.size(); ++wi) {
        size_t best = 0;
        for (size_t ci = 1; ci < space.size(); ++ci)
            if (cpi[wi][ci] < cpi[wi][best])
                best = ci;
        double gain = 100 * (cpi[wi][bestGeneral] - cpi[wi][best]) /
                      cpi[wi][bestGeneral];
        gainSum += gain;
        std::printf("%-16s %10.3f %10.3f %7.1f%%  %s\n",
                    b.specs[wi].name.c_str(), cpi[wi][bestGeneral],
                    cpi[wi][best], gain, space[best].name.c_str());
    }
    std::printf("\naverage CPI gain from specialization: %.1f%%\n",
                gainSum / b.size());
    return 0;
}
