/**
 * Benchmarks for the memoized evaluation pipeline and the DSE sweep
 * modes (google-benchmark; recorded in BENCH_speedup.json by
 * bench/run_benchmarks.sh).
 *
 * BM_EvalUncached / BM_EvalCached measure the paper's core amortization:
 * one profile evaluated across the thesis's full 243-point design space
 * (width x ROB x L1 x L2 x L3, Table 6.3), once through the plain
 * per-call path and once through a shared EvalContext. Outputs are
 * bitwise identical (tests/test_eval_cache.cc); only the repeated
 * per-workload rebuild cost differs. BM_DseSweepModelOnly sweeps the
 * full 243-config space over several workloads with no simulation — the
 * configuration the million-point claim extrapolates from — and
 * BM_DseSweepPaired gives the simulation-bound reference on a small
 * space.
 *
 * BM_DseSweepBatched runs the exact same space as BM_DseSweepModelOnly
 * through the streaming ModelOnlyPareto mode with a persistent
 * ModelEvalPool — the steady-state batched throughput the README quotes.
 * BM_DseSweepMillion sweeps a generated 2^20-point space (the paper's
 * million-point claim) without ever materializing the configs or the
 * point grid; it is excluded from smoke runs (see run_benchmarks.sh).
 */
#include <benchmark/benchmark.h>

#include <vector>

#include "dse/explorer.hh"
#include "model/eval_cache.hh"
#include "profiler/profiler.hh"
#include "uarch/design_space.hh"
#include "workloads/workload.hh"

namespace {

using namespace mipp;

const Profile &
sharedProfile()
{
    static Profile p = [] {
        Trace t = generateWorkload(suiteWorkload("balanced_mix"), 150000);
        return profileTrace(t, {.name = "balanced_mix"});
    }();
    return p;
}

/** The thesis's full 243-point design space (3 levels on each of 5
 *  axes): a handful of discrete cache/ROB levels shared by many design
 *  points, the structure the evaluation cache exploits. */
const std::vector<CoreConfig> &
evalGrid()
{
    static DesignSpace space; // full 243-point space
    return space.configs();
}

void
BM_EvalUncached(benchmark::State &state)
{
    const Profile &p = sharedProfile();
    const auto &grid = evalGrid();
    for (auto _ : state) {
        double acc = 0;
        for (const CoreConfig &cfg : grid)
            acc += evaluateModel(p, cfg).cycles;
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * grid.size());
}
BENCHMARK(BM_EvalUncached)->Unit(benchmark::kMillisecond);

void
BM_EvalCached(benchmark::State &state)
{
    const Profile &p = sharedProfile();
    const auto &grid = evalGrid();
    for (auto _ : state) {
        // One context per workload, exactly as a sweep chunk holds it;
        // its construction and warm-up are part of the measured cost.
        EvalContext ctx(p);
        double acc = 0;
        for (const CoreConfig &cfg : grid)
            acc += evaluateModel(ctx, cfg).cycles;
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * grid.size());
}
BENCHMARK(BM_EvalCached)->Unit(benchmark::kMillisecond);

struct SweepInputs {
    std::vector<Trace> traces;
    std::vector<Profile> profiles;
};

SweepInputs
makeSweepInputs(std::initializer_list<const char *> names, size_t uops)
{
    SweepInputs in;
    for (const char *name : names) {
        in.traces.push_back(generateWorkload(suiteWorkload(name), uops));
        in.profiles.push_back(
            profileTrace(in.traces.back(), {.name = name}));
    }
    return in;
}

void
BM_DseSweepModelOnly(benchmark::State &state)
{
    static const SweepInputs in = makeSweepInputs(
        {"balanced_mix", "stream_add", "ptr_chase", "branchy"}, 150000);
    DesignSpace space; // full 243-point space
    SweepOptions so;
    so.mode = SweepMode::ModelOnly;
    size_t points = in.profiles.size() * space.size();
    for (auto _ : state) {
        SweepResult r =
            sweepEx(in.traces, in.profiles, space.configs(), {}, so);
        benchmark::DoNotOptimize(r.points.data());
    }
    state.SetItemsProcessed(state.iterations() * points);
}
BENCHMARK(BM_DseSweepModelOnly)->Unit(benchmark::kMillisecond);

void
BM_DseSweepBatched(benchmark::State &state)
{
    // Same 4 workloads x 243 configs as BM_DseSweepModelOnly; the ratio
    // of the two items_per_second readings is the batched-sweep speedup
    // recorded in BENCH_speedup.json. The pool lives across iterations,
    // so the min-of-reps aggregate measures warm steady-state throughput
    // (repeated sweeps against pinned profiles, the pool's use case).
    static const SweepInputs in = makeSweepInputs(
        {"balanced_mix", "stream_add", "ptr_chase", "branchy"}, 150000);
    static ModelEvalPool pool;
    DesignSpace space; // full 243-point space
    SweepOptions so;
    so.mode = SweepMode::ModelOnlyPareto;
    so.evalPool = &pool;
    size_t points = in.profiles.size() * space.size();
    for (auto _ : state) {
        SweepResult r =
            sweepEx(in.traces, in.profiles, space.configs(), {}, so);
        benchmark::DoNotOptimize(r.frontPoints.data());
    }
    state.SetItemsProcessed(state.iterations() * points);
}
BENCHMARK(BM_DseSweepBatched)->Unit(benchmark::kMillisecond);

void
BM_DseSweepMillion(benchmark::State &state)
{
    // 8 widths x 16 ROB sizes x 8 L1D x 8 L2 x 8 L3 x 16 DVFS points =
    // 2^20 = 1,048,576 configs, produced on the fly by a generator that
    // decodes the point index — neither the config vector (~1 GB) nor
    // the result grid is ever materialized. DVFS is the innermost axis,
    // so each microarchitecture's model evaluation is reused across the
    // ladder and only the power changes.
    static const SweepInputs in = makeSweepInputs({"balanced_mix"}, 150000);
    static ModelEvalPool pool;
    const CoreConfig base = CoreConfig::nehalemReference();
    constexpr size_t kDvfs = 16;
    ConfigGenerator gen = [&base](size_t ci, CoreConfig &out) {
        if (out.ports.empty())
            out = base; // first use of this scratch slot
        size_t v = ci % kDvfs;
        ci /= kDvfs;
        size_t l3 = ci % 8;
        ci /= 8;
        size_t l2 = ci % 8;
        ci /= 8;
        size_t l1 = ci % 8;
        ci /= 8;
        size_t rob = ci % 16;
        ci /= 16;
        uint32_t width = static_cast<uint32_t>(ci) + 1; // 1..8
        if (out.dispatchWidth != width)
            out.setWidth(width);
        scaleBackEnd(out, 32 + 16 * static_cast<uint32_t>(rob));
        out.l1d.sizeBytes = (8u << l1) * 1024;   // 8 KB .. 1 MB
        out.l2.sizeBytes = (128u << l2) * 1024;  // 128 KB .. 16 MB
        out.l3.sizeBytes = (1u << l3) * 1024 * 1024; // 1 MB .. 128 MB
        scaleCacheLatencies(out);
        // Finer-grained ladder than dvfsLadder()'s 7 steps, same span.
        out.freqGHz = 1.20 + 0.14 * static_cast<double>(v);
        out.vdd = 0.85 + 0.025 * static_cast<double>(v);
    };
    constexpr size_t kPoints = 8 * 16 * 8 * 8 * 8 * kDvfs;
    static_assert(kPoints == 1048576);
    SweepOptions so;
    so.mode = SweepMode::ModelOnlyPareto;
    so.evalPool = &pool;
    for (auto _ : state) {
        SweepResult r = sweepGenerated(in.profiles, kPoints, gen, {}, so);
        benchmark::DoNotOptimize(r.frontPoints.data());
    }
    state.SetItemsProcessed(state.iterations() * kPoints);
}
BENCHMARK(BM_DseSweepMillion)->Unit(benchmark::kMillisecond);

void
BM_DseSweepPaired(benchmark::State &state)
{
    // Simulation-bound reference: tiny traces and a small grid keep the
    // benchmark runnable while preserving the O(points x sim) shape.
    static const SweepInputs in =
        makeSweepInputs({"balanced_mix", "ptr_chase"}, 30000);
    std::vector<CoreConfig> configs;
    for (uint32_t w : {2u, 4u})
        for (uint32_t rob : {64u, 256u}) {
            CoreConfig c = CoreConfig::nehalemReference();
            c.setWidth(w);
            scaleBackEnd(c, rob);
            configs.push_back(c);
        }
    size_t points = in.profiles.size() * configs.size();
    for (auto _ : state) {
        SweepResult r = sweepEx(in.traces, in.profiles, configs, {}, {});
        benchmark::DoNotOptimize(r.points.data());
    }
    state.SetItemsProcessed(state.iterations() * points);
}
BENCHMARK(BM_DseSweepPaired)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
