/**
 * Benchmarks for the memoized evaluation pipeline and the DSE sweep
 * modes (google-benchmark; recorded in BENCH_speedup.json by
 * bench/run_benchmarks.sh).
 *
 * BM_EvalUncached / BM_EvalCached measure the paper's core amortization:
 * one profile evaluated across the thesis's full 243-point design space
 * (width x ROB x L1 x L2 x L3, Table 6.3), once through the plain
 * per-call path and once through a shared EvalContext. Outputs are
 * bitwise identical (tests/test_eval_cache.cc); only the repeated
 * per-workload rebuild cost differs. BM_DseSweepModelOnly sweeps the
 * full 243-config space over several workloads with no simulation — the
 * configuration the million-point claim extrapolates from — and
 * BM_DseSweepPaired gives the simulation-bound reference on a small
 * space.
 */
#include <benchmark/benchmark.h>

#include <vector>

#include "dse/explorer.hh"
#include "model/eval_cache.hh"
#include "profiler/profiler.hh"
#include "uarch/design_space.hh"
#include "workloads/workload.hh"

namespace {

using namespace mipp;

const Profile &
sharedProfile()
{
    static Profile p = [] {
        Trace t = generateWorkload(suiteWorkload("balanced_mix"), 150000);
        return profileTrace(t, {.name = "balanced_mix"});
    }();
    return p;
}

/** The thesis's full 243-point design space (3 levels on each of 5
 *  axes): a handful of discrete cache/ROB levels shared by many design
 *  points, the structure the evaluation cache exploits. */
const std::vector<CoreConfig> &
evalGrid()
{
    static DesignSpace space; // full 243-point space
    return space.configs();
}

void
BM_EvalUncached(benchmark::State &state)
{
    const Profile &p = sharedProfile();
    const auto &grid = evalGrid();
    for (auto _ : state) {
        double acc = 0;
        for (const CoreConfig &cfg : grid)
            acc += evaluateModel(p, cfg).cycles;
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * grid.size());
}
BENCHMARK(BM_EvalUncached)->Unit(benchmark::kMillisecond);

void
BM_EvalCached(benchmark::State &state)
{
    const Profile &p = sharedProfile();
    const auto &grid = evalGrid();
    for (auto _ : state) {
        // One context per workload, exactly as a sweep chunk holds it;
        // its construction and warm-up are part of the measured cost.
        EvalContext ctx(p);
        double acc = 0;
        for (const CoreConfig &cfg : grid)
            acc += evaluateModel(ctx, cfg).cycles;
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * grid.size());
}
BENCHMARK(BM_EvalCached)->Unit(benchmark::kMillisecond);

struct SweepInputs {
    std::vector<Trace> traces;
    std::vector<Profile> profiles;
};

SweepInputs
makeSweepInputs(std::initializer_list<const char *> names, size_t uops)
{
    SweepInputs in;
    for (const char *name : names) {
        in.traces.push_back(generateWorkload(suiteWorkload(name), uops));
        in.profiles.push_back(
            profileTrace(in.traces.back(), {.name = name}));
    }
    return in;
}

void
BM_DseSweepModelOnly(benchmark::State &state)
{
    static const SweepInputs in = makeSweepInputs(
        {"balanced_mix", "stream_add", "ptr_chase", "branchy"}, 150000);
    DesignSpace space; // full 243-point space
    SweepOptions so;
    so.mode = SweepMode::ModelOnly;
    size_t points = in.profiles.size() * space.size();
    for (auto _ : state) {
        SweepResult r =
            sweepEx(in.traces, in.profiles, space.configs(), {}, so);
        benchmark::DoNotOptimize(r.points.data());
    }
    state.SetItemsProcessed(state.iterations() * points);
}
BENCHMARK(BM_DseSweepModelOnly)->Unit(benchmark::kMillisecond);

void
BM_DseSweepPaired(benchmark::State &state)
{
    // Simulation-bound reference: tiny traces and a small grid keep the
    // benchmark runnable while preserving the O(points x sim) shape.
    static const SweepInputs in =
        makeSweepInputs({"balanced_mix", "ptr_chase"}, 30000);
    std::vector<CoreConfig> configs;
    for (uint32_t w : {2u, 4u})
        for (uint32_t rob : {64u, 256u}) {
            CoreConfig c = CoreConfig::nehalemReference();
            c.setWidth(w);
            scaleBackEnd(c, rob);
            configs.push_back(c);
        }
    size_t points = in.profiles.size() * configs.size();
    for (auto _ : state) {
        SweepResult r = sweepEx(in.traces, in.profiles, configs, {}, {});
        benchmark::DoNotOptimize(r.points.data());
    }
    state.SetItemsProcessed(state.iterations() * points);
}
BENCHMARK(BM_DseSweepPaired)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
