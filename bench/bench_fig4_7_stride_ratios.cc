/** Regenerates thesis Fig 4.7: stride-category ratios per benchmark. */
#include "bench_util.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 4.7", "per-static-load stride-class ratios");
    auto b = suiteBundle();
    std::printf("%-16s %8s %8s %8s %8s %8s %8s\n", "benchmark", "str-1",
                "str-2", "str-3", "str-4", "random", "unique");
    for (size_t i = 0; i < b.size(); ++i) {
        double counts[6] = {};
        double total = 0;
        for (const auto &op : b.profiles[i].memOps) {
            if (op.isStore)
                continue;
            counts[static_cast<int>(op.strideClass())] +=
                static_cast<double>(op.count);
            total += static_cast<double>(op.count);
        }
        if (total == 0)
            total = 1;
        std::printf("%-16s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% "
                    "%7.1f%%\n",
                    b.specs[i].name.c_str(), 100 * counts[0] / total,
                    100 * counts[1] / total, 100 * counts[2] / total,
                    100 * counts[3] / total, 100 * counts[4] / total,
                    100 * counts[5] / total);
    }
    return 0;
}
