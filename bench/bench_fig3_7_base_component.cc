/**
 * Regenerates thesis Fig 3.7: base-component prediction error against a
 * miss-event-free ("perfect") simulation, for each refinement of the
 * effective dispatch rate. The paper reports the error dropping from
 * ~41.6 % (instructions / physical width) to ~11.7 % (full Eq 3.10).
 */
#include "bench_util.hh"
#include "model/interval_model.hh"
#include "sim/ooo_core.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 3.7",
           "base-component error vs perfect simulation per refinement");
    auto b = suiteBundle();
    CoreConfig cfg = CoreConfig::nehalemReference();
    SimOptions perfect;
    perfect.perfectBranch = true;
    perfect.perfectICache = true;
    perfect.perfectDCache = true;

    std::vector<double> simCycles;
    for (const auto &t : b.traces)
        simCycles.push_back(
            static_cast<double>(simulate(t, cfg, perfect).cycles));

    using L = ModelOptions::BaseLevel;
    const std::pair<L, const char *> levels[] = {
        {L::Instructions, "Instructions"},
        {L::MicroOps, "Micro-operations"},
        {L::CriticalPath, "Critical path"},
        {L::Functional, "Functional units/ports"},
    };
    std::printf("%-24s %10s %10s\n", "refinement", "avg |err|", "max |err|");
    for (auto [level, name] : levels) {
        ModelOptions o;
        o.baseLevel = level;
        o.mlpMode = ModelOptions::MlpMode::None;
        std::vector<double> errs;
        for (size_t i = 0; i < b.size(); ++i) {
            auto res = evaluateModel(b.profiles[i], cfg, o);
            errs.push_back(pctErr(res.stack.base, simCycles[i]));
        }
        std::printf("%-24s %9.1f%% %9.1f%%\n", name, meanAbs(errs),
                    maxAbs(errs));
    }
    std::printf("\n(paper: 41.6%% -> 32.7%% -> 23.3%% -> 11.7%% average)\n");
    return 0;
}
