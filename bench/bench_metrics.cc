/**
 * @file
 * Overhead guard for the observability layer. The promise in
 * src/obs/metrics.hh is "instruments cost nanoseconds": a disabled span
 * is one relaxed atomic load, counter/histogram mutation a handful of
 * relaxed RMWs. These benchmarks pin that down so a regression (say, an
 * accidental lock or clock read on the disabled path) shows up as a
 * latency cliff in the bench trajectory, not as a mystery serve
 * slowdown. BM_SpanDisabled is the one that must stay ~free: it is the
 * cost every instrumented hot path pays in production.
 */

#include <benchmark/benchmark.h>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace {

using namespace mipp;

void
BM_SpanDisabled(benchmark::State &state)
{
    // No recorder installed, no histogram: the production fast path.
    for (auto _ : state) {
        MIPP_SPAN("bench.disabled");
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_SpanDisabled);

void
BM_SpanWithHistogram(benchmark::State &state)
{
    // Untraced but feeding a latency histogram (the serve per-op path):
    // adds two clock reads plus the record.
    obs::LatencyHistogram h;
    for (auto _ : state) {
        MIPP_SPAN("bench.hist", &h);
        benchmark::ClobberMemory();
    }
    state.counters["recorded"] = static_cast<double>(h.count());
}
BENCHMARK(BM_SpanWithHistogram);

void
BM_SpanRecorded(benchmark::State &state)
{
    // Fully traced: ring-buffer write under a short mutex hold.
    obs::SpanRecorder rec;
    rec.install();
    for (auto _ : state) {
        MIPP_SPAN("bench.recorded");
        benchmark::ClobberMemory();
    }
    obs::SpanRecorder::uninstall();
}
BENCHMARK(BM_SpanRecorded);

void
BM_CounterAdd(benchmark::State &state)
{
    obs::Counter c;
    for (auto _ : state)
        c.add();
    benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterAdd);

void
BM_HistogramRecord(benchmark::State &state)
{
    obs::LatencyHistogram h;
    uint64_t v = 1;
    for (auto _ : state) {
        h.record(v);
        v = (v * 2862933555777941757ull + 3037000493ull) >> 32; // lcg
    }
    benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

void
BM_MetricsOverhead(benchmark::State &state)
{
    // The composite guard: what one serve request pays with no sink
    // installed — op span + histogram, queue-wait record, four counter
    // bumps. Compare against BM_ServeThroughput's µs/request scale.
    obs::Registry reg;
    obs::Counter &a = reg.counter("bench_a_total");
    obs::Counter &b = reg.counter("bench_b_total");
    obs::Counter &c = reg.counter("bench_c_total");
    obs::Counter &d = reg.counter("bench_d_total");
    obs::LatencyHistogram &lat =
        reg.histogram("bench_lat_ns", "op=\"x\"");
    obs::LatencyHistogram &wait = reg.histogram("bench_wait_ns");
    for (auto _ : state) {
        MIPP_SPAN("bench.op", &lat);
        wait.record(42);
        a.add();
        b.add();
        c.add();
        d.add();
    }
    state.counters["ops"] = static_cast<double>(lat.count());
}
BENCHMARK(BM_MetricsOverhead);

void
BM_RegistryRenderPrometheus(benchmark::State &state)
{
    // Exposition cost scales with registry size; a serve-shaped
    // registry (a dozen counters, ten histograms) must render in
    // microseconds so scraping never perturbs the daemon.
    obs::Registry reg;
    for (int i = 0; i < 12; ++i)
        reg.counter("bench_counter_" + std::to_string(i)).add(i);
    for (int i = 0; i < 10; ++i) {
        obs::LatencyHistogram &h =
            reg.histogram("bench_hist_" + std::to_string(i));
        for (uint64_t v = 1; v < 2000; v *= 3)
            h.record(v);
    }
    for (auto _ : state) {
        std::string text = reg.renderPrometheus();
        benchmark::DoNotOptimize(text);
    }
}
BENCHMARK(BM_RegistryRenderPrometheus);

} // namespace

BENCHMARK_MAIN();
