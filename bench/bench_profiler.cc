/**
 * Thread-scaling benchmarks for the segment-parallel profiler.
 * BM_ProfileSequential is the classic single-pass profiler;
 * BM_ProfileParallel/N runs profileTraceParallel with N worker threads
 * over the same trace. Because parallel profiling is bit-identical to
 * the sequential pass (see tests/test_profiler_parallel.cc), the ratio
 * of their items_per_second rates is pure speedup, not an
 * accuracy trade.
 */
#include <benchmark/benchmark.h>

#include "profiler/profiler.hh"
#include "trace/trace_source.hh"
#include "workloads/workload.hh"

namespace {

using namespace mipp;

constexpr size_t kUops = 2000000;

const Trace &
sharedTrace()
{
    static Trace t =
        generateWorkload(suiteWorkload("balanced_mix"), kUops);
    return t;
}

void
BM_ProfileSequential(benchmark::State &state)
{
    for (auto _ : state) {
        Profile p = profileTrace(sharedTrace(), {});
        benchmark::DoNotOptimize(p.profiledUops);
    }
    state.SetItemsProcessed(state.iterations() * sharedTrace().size());
}
BENCHMARK(BM_ProfileSequential)->Unit(benchmark::kMillisecond);

void
BM_ProfileParallel(benchmark::State &state)
{
    ParallelProfileOptions opts;
    opts.threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        Profile p = profileTraceParallel(sharedTrace(), {}, opts);
        benchmark::DoNotOptimize(p.profiledUops);
    }
    state.SetItemsProcessed(state.iterations() * sharedTrace().size());
}
BENCHMARK(BM_ProfileParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_ProfileSourceStreaming(benchmark::State &state)
{
    // Streaming path: the source is materialized here, but the profiler
    // consumes it through the TraceSource window (segment copies + the
    // batch pipeline), so this measures the streaming overhead.
    ParallelProfileOptions opts;
    opts.threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        MaterializedTraceSource src(sharedTrace());
        Profile p = opts.threads <= 1
                        ? profileSource(src)
                        : profileSourceParallel(src, {}, opts);
        benchmark::DoNotOptimize(p.profiledUops);
    }
    state.SetItemsProcessed(state.iterations() * sharedTrace().size());
}
BENCHMARK(BM_ProfileSourceStreaming)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
