/** Regenerates thesis Fig 3.1: micro-operations per instruction. */
#include "bench_util.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 3.1", "micro-operations per instruction per benchmark");
    auto b = suiteBundle();
    std::printf("%-16s %12s\n", "benchmark", "uops/inst");
    double lo = 10, hi = 0;
    for (size_t i = 0; i < b.size(); ++i) {
        double upi = b.traces[i].uopsPerInstruction();
        std::printf("%-16s %12.3f\n", b.specs[i].name.c_str(), upi);
        lo = std::min(lo, upi);
        hi = std::max(hi, upi);
    }
    std::printf("\nrange: %.3f .. %.3f  (paper: ~1.07 for lbm to ~1.38 "
                "for GemsFDTD)\n", lo, hi);
    return 0;
}
