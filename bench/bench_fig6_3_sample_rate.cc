/**
 * Regenerates thesis Fig 6.3: prediction error versus the number of
 * instructions profiled (micro-trace sampling rate sweep).
 */
#include "bench_util.hh"
#include "model/interval_model.hh"
#include "sim/ooo_core.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 6.3", "CPI error vs profiled fraction (sampling sweep)");
    CoreConfig cfg = CoreConfig::nehalemReference();
    const size_t traceLen = 300000;

    struct Rate {
        SamplingConfig s;
        const char *name;
    };
    const Rate rates[] = {
        {{500, 50000}, "1/100"},
        {{1000, 40000}, "1/40"},
        {{1000, 20000}, "1/20 (default)"},
        {{1000, 10000}, "1/10"},
        {{1000, 4000}, "1/4"},
        {SamplingConfig::full(), "full"},
    };

    // Ground truth once per workload.
    std::vector<Trace> traces;
    std::vector<double> simCycles;
    for (const auto &spec : workloadSuite()) {
        traces.push_back(generateWorkload(spec, traceLen));
        simCycles.push_back(
            static_cast<double>(simulate(traces.back(), cfg).cycles));
    }

    std::printf("%-16s %12s %12s\n", "sample rate", "avg |err|",
                "max |err|");
    for (const auto &r : rates) {
        std::vector<double> errs;
        for (size_t i = 0; i < traces.size(); ++i) {
            ProfilerConfig pc;
            pc.sampling = r.s;
            Profile p = profileTrace(traces[i], pc);
            auto res = evaluateModel(p, cfg);
            errs.push_back(pctErr(res.cycles, simCycles[i]));
        }
        std::printf("%-16s %11.1f%% %11.1f%%\n", r.name, meanAbs(errs),
                    maxAbs(errs));
    }
    std::printf("\n(paper: accuracy saturates well below full profiling "
                "— sampling buys speed at little cost)\n");
    return 0;
}
