/** Regenerates thesis Fig 3.6: the four effective-dispatch-rate limits. */
#include "bench_util.hh"
#include "model/interval_model.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 3.6", "factors limiting the effective dispatch rate");
    auto b = suiteBundle();
    CoreConfig cfg = CoreConfig::nehalemReference();
    std::printf("%-16s %9s %9s %9s %9s %9s  %s\n", "benchmark",
                "dispatch", "depend", "port", "fu", "Deff", "binding");
    for (size_t i = 0; i < b.size(); ++i) {
        auto res = evaluateModel(b.profiles[i], cfg);
        const auto &l = res.limits;
        std::printf("%-16s %9.2f %9.2f %9.2f %9.2f %9.2f  %s\n",
                    b.specs[i].name.c_str(), l.width, l.dependences,
                    l.ports, l.fus, l.effective(), l.binding());
    }
    return 0;
}
