/**
 * Regenerates thesis Fig 5.5: dependence-chain error due to micro-trace
 * sampling. The paper reports 0.45 % (AP), 4.22 % (ABP), 0.34 % (CP).
 */
#include "bench_util.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 5.5", "chain-length error due to micro-trace sampling");
    std::printf("%-16s %8s %8s %8s\n", "benchmark", "AP", "ABP", "CP");
    std::vector<double> apAll, abpAll, cpAll;
    for (const auto &spec : workloadSuite()) {
        Trace t = generateWorkload(spec, 300000);
        ProfilerConfig full;
        full.sampling = SamplingConfig::full();
        ProfilerConfig sampled;
        sampled.sampling = {1000, 20000};
        Profile pf = profileTrace(t, full);
        Profile ps = profileTrace(t, sampled);
        double ap = pctErr(ps.chains.ap(128), pf.chains.ap(128));
        double abp = pctErr(ps.chains.abp(128), pf.chains.abp(128));
        double cp = pctErr(ps.chains.cp(128), pf.chains.cp(128));
        std::printf("%-16s %7.2f%% %7.2f%% %7.2f%%\n", spec.name.c_str(),
                    ap, abp, cp);
        apAll.push_back(ap);
        abpAll.push_back(abp);
        cpAll.push_back(cp);
    }
    std::printf("\nsuite avg |err|: AP %.2f%%  ABP %.2f%%  CP %.2f%%  "
                "(paper: 0.45%% / 4.22%% / 0.34%%)\n",
                meanAbs(apAll), meanAbs(abpAll), meanAbs(cpAll));
    return 0;
}
