/**
 * @file
 * Shared helpers for the per-figure/table bench binaries.
 *
 * Every bench regenerates one table or figure of the paper's evaluation
 * (thesis Ch. 3-7) and prints the same rows/series. bench_util provides
 * the standard workload bundle (traces + profiles) and small formatting
 * utilities so each bench stays focused on its experiment.
 */

#ifndef MIPP_BENCH_BENCH_UTIL_HH
#define MIPP_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "profiler/profiler.hh"
#include "workloads/workload.hh"

namespace mipp::bench {

/** Traces and profiles for a workload set, generated once per binary. */
struct Bundle {
    std::vector<WorkloadSpec> specs;
    std::vector<Trace> traces;
    std::vector<Profile> profiles;

    size_t size() const { return specs.size(); }
};

/** Build the bundle for @p specs at @p uops per trace. */
inline Bundle
makeBundle(std::vector<WorkloadSpec> specs, size_t uops = 150000)
{
    Bundle b;
    b.specs = std::move(specs);
    for (const auto &spec : b.specs) {
        b.traces.push_back(generateWorkload(spec, uops));
        ProfilerConfig pc;
        pc.name = spec.name;
        b.profiles.push_back(profileTrace(b.traces.back(), pc));
    }
    return b;
}

/** The full 20-workload suite. */
inline Bundle
suiteBundle(size_t uops = 150000)
{
    return makeBundle(workloadSuite(), uops);
}

/** Banner naming the regenerated figure/table. */
inline void
banner(const char *id, const char *description)
{
    std::printf("==============================================================================\n");
    std::printf("%s — %s\n", id, description);
    std::printf("==============================================================================\n");
}

/** Signed relative error in percent. */
inline double
pctErr(double predicted, double reference)
{
    return reference != 0 ? 100.0 * (predicted - reference) / reference
                          : 0.0;
}

/** Mean of absolute values. */
inline double
meanAbs(const std::vector<double> &v)
{
    if (v.empty())
        return 0;
    double s = 0;
    for (double x : v)
        s += std::fabs(x);
    return s / v.size();
}

/** Maximum of absolute values. */
inline double
maxAbs(const std::vector<double> &v)
{
    double m = 0;
    for (double x : v)
        m = std::max(m, std::fabs(x));
    return m;
}

} // namespace mipp::bench

#endif // MIPP_BENCH_BENCH_UTIL_HH
