/**
 * Regenerates thesis Fig 6.5/6.6: performance prediction error across a
 * design space (box summary + scatter rows of simulated vs predicted
 * CPI). TC'16 reports 9.3 % average across the full 243-point space;
 * this bench uses the 27-point subspace and six diverse workloads to
 * stay laptop-fast.
 */
#include "bench_util.hh"
#include "dse/explorer.hh"
#include "uarch/design_space.hh"

using namespace mipp;
using namespace mipp::bench;

int
main()
{
    banner("Fig 6.5/6.6", "CPI error across the design space");
    auto b = makeBundle({suiteWorkload("stream_add"),
                         suiteWorkload("ptr_chase"),
                         suiteWorkload("dense_compute"),
                         suiteWorkload("matrix_tile"),
                         suiteWorkload("mix_mid"),
                         suiteWorkload("balanced_mix")},
                        120000);
    DesignSpace space = DesignSpace::small();
    auto points = sweep(b.traces, b.profiles, space.configs());

    std::printf("%-30s %-14s %9s %9s %8s\n", "config", "workload",
                "sim CPI", "mod CPI", "err");
    std::vector<double> errs;
    for (const auto &pt : points) {
        errs.push_back(100 * pt.cpiError());
        std::printf("%-30s %-14s %9.3f %9.3f %7.1f%%\n",
                    space[pt.configIdx].name.c_str(),
                    b.specs[pt.workloadIdx].name.c_str(), pt.simCpi,
                    pt.modelCpi, 100 * pt.cpiError());
    }
    std::printf("\ndesign-space CPI error: avg |err| %.1f%%, max %.1f%%  "
                "(paper: 9.3%%-13%% avg)\n",
                meanAbs(errs), maxAbs(errs));
    return 0;
}
